// Elimination forests (paper Definition 2.1) and treedepth utilities.
//
// An elimination forest of G is a rooted forest on V(G) such that every edge
// of G connects an ancestor-descendant pair. The treedepth td(G) is the
// minimum depth (counted in vertices: a single root has depth 1) of such a
// forest.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace dmc {

/// Rooted forest over the vertices of a graph.
class EliminationForest {
 public:
  EliminationForest() = default;

  /// `parent[v] == -1` marks roots. Throws if the parent pointers contain a
  /// cycle or reference invalid ids.
  explicit EliminationForest(std::vector<VertexId> parent);

  int num_vertices() const { return static_cast<int>(parent_.size()); }
  VertexId parent(VertexId v) const { return parent_.at(v); }
  const std::vector<VertexId>& parents() const { return parent_; }
  /// Depth of v, in vertices (roots have depth 1).
  int depth(VertexId v) const { return depth_.at(v); }
  /// Depth of the forest = max vertex depth.
  int depth() const;
  const std::vector<VertexId>& children(VertexId v) const {
    return children_.at(v);
  }
  std::vector<VertexId> roots() const;

  bool is_ancestor(VertexId anc, VertexId v) const;

  /// Strict+self ancestors of v from the root down to v (inclusive).
  /// This is exactly the canonical bag B_v of Lemma 2.4.
  std::vector<VertexId> root_path(VertexId v) const;

  /// True iff this forest is a valid elimination forest for g: same vertex
  /// count and every g-edge joins an ancestor-descendant pair.
  bool valid_for(const Graph& g) const;

  /// True iff additionally every tree edge {v, parent(v)} is an edge of g
  /// (the property Algorithm 2 guarantees, used by Lemma 2.5).
  bool is_subgraph_of(const Graph& g) const;

 private:
  std::vector<VertexId> parent_;
  std::vector<int> depth_;
  std::vector<std::vector<VertexId>> children_;
};

/// Exact treedepth via memoized recursion on vertex subsets (Lemma 2.2).
/// Requires g.num_vertices() <= 20 (throws otherwise).
int exact_treedepth(const Graph& g);

/// Exact treedepth together with an optimal elimination forest.
std::pair<int, EliminationForest> exact_treedepth_forest(const Graph& g);

/// Balanced-separator heuristic elimination forest: recursively removes, in
/// each component, the vertex minimizing the largest remaining component
/// (ties broken by smaller id). Gives depth O(log n) on paths and trees
/// (centroid decomposition) and near-optimal depth on the bounded-treedepth
/// families used in the experiments. Works on disconnected graphs.
EliminationForest balanced_elimination_forest(const Graph& g);

/// Sequential mirror of the distributed Algorithm 2: greedily grows an
/// elimination tree that is a subtree of g, phase by phase. Returns nullopt
/// if the construction exceeds `max_depth` phases (which proves
/// td(g) > log2(max_depth+1), cf. Lemma 2.5). Requires g connected.
std::optional<EliminationForest> greedy_elimination_tree(const Graph& g,
                                                         int max_depth);

}  // namespace dmc
