#include "td/tree_decomposition.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmc {

int TreeDecomposition::width() const {
  int w = 0;
  for (const auto& bag : bags) w = std::max<int>(w, static_cast<int>(bag.size()));
  return w - 1;
}

std::vector<std::vector<int>> TreeDecomposition::children() const {
  std::vector<std::vector<int>> ch(num_nodes());
  for (int i = 0; i < num_nodes(); ++i)
    if (parent[i] >= 0) ch[parent[i]].push_back(i);
  return ch;
}

std::vector<int> TreeDecomposition::topological_order() const {
  std::vector<int> order;
  order.reserve(num_nodes());
  const auto ch = children();
  for (int i = 0; i < num_nodes(); ++i)
    if (parent[i] < 0) order.push_back(i);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (int c : ch[order[head]]) order.push_back(c);
  if (static_cast<int>(order.size()) != num_nodes())
    throw std::logic_error("TreeDecomposition: parent cycle");
  return order;
}

bool TreeDecomposition::valid_for(const Graph& g) const {
  if (static_cast<int>(parent.size()) != num_nodes()) return false;
  const int n = g.num_vertices();
  // Bags sorted, in range.
  for (const auto& bag : bags) {
    if (!std::is_sorted(bag.begin(), bag.end())) return false;
    for (VertexId v : bag)
      if (v < 0 || v >= n) return false;
    if (std::adjacent_find(bag.begin(), bag.end()) != bag.end()) return false;
  }
  // (1) every vertex in some bag.
  std::vector<bool> seen(n, false);
  for (const auto& bag : bags)
    for (VertexId v : bag) seen[v] = true;
  for (int v = 0; v < n; ++v)
    if (!seen[v]) return false;
  // (2) every edge inside some bag.
  for (const Edge& e : g.edges()) {
    bool found = false;
    for (const auto& bag : bags) {
      if (std::binary_search(bag.begin(), bag.end(), e.u) &&
          std::binary_search(bag.begin(), bag.end(), e.v)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // (3) bags containing any vertex form a connected subtree: check by
  // counting, for each vertex, the nodes containing it and the tree edges
  // between two such nodes; connectivity <=> #edges == #nodes - 1.
  for (int v = 0; v < n; ++v) {
    int nodes = 0, links = 0;
    for (int i = 0; i < num_nodes(); ++i) {
      const bool in_i =
          std::binary_search(bags[i].begin(), bags[i].end(), v);
      if (!in_i) continue;
      ++nodes;
      if (parent[i] >= 0 &&
          std::binary_search(bags[parent[i]].begin(), bags[parent[i]].end(), v))
        ++links;
    }
    if (nodes == 0 || links != nodes - 1) return false;
  }
  return true;
}

TreeDecomposition canonical_tree_decomposition(
    const Graph& g, const EliminationForest& forest) {
  if (!forest.valid_for(g))
    throw std::invalid_argument(
        "canonical_tree_decomposition: forest is not an elimination forest");
  TreeDecomposition td;
  td.parent = forest.parents();
  td.bags.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    td.bags[v] = forest.root_path(v);
    std::sort(td.bags[v].begin(), td.bags[v].end());
  }
  return td;
}

}  // namespace dmc
