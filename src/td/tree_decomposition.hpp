// Tree decompositions (paper Definition 2.3) and the canonical decomposition
// derived from an elimination forest (Lemma 2.4).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "td/elimination_forest.hpp"

namespace dmc {

/// Rooted tree decomposition. Decomposition nodes are 0..num_nodes-1;
/// `parent[i] == -1` marks the root (decompositions of connected graphs have
/// exactly one root here).
struct TreeDecomposition {
  std::vector<int> parent;                  // tree structure over nodes
  std::vector<std::vector<VertexId>> bags;  // bag contents, sorted ascending

  int num_nodes() const { return static_cast<int>(bags.size()); }

  /// Max bag size minus one.
  int width() const;

  /// Children lists derived from `parent`.
  std::vector<std::vector<int>> children() const;

  /// Nodes in root-first (topological) order.
  std::vector<int> topological_order() const;

  /// Validates the three conditions of Definition 2.3 against g, plus
  /// structural sanity (single root per component, sorted bags).
  bool valid_for(const Graph& g) const;
};

/// Canonical tree decomposition of Lemma 2.4: one decomposition node per
/// vertex, bag B_v = root path of v; width = forest depth - 1.
/// Requires forest.valid_for(g).
TreeDecomposition canonical_tree_decomposition(const Graph& g,
                                               const EliminationForest& forest);

}  // namespace dmc
