#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmc {
namespace {

TEST(Algorithms, BfsDistances) {
  const Graph g = gen::path(5);
  const auto dist = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(Algorithms, BfsUnreachable) {
  const Graph g = gen::disjoint_union(gen::path(2), gen::path(2));
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
}

TEST(Algorithms, ConnectedComponents) {
  const Graph g = gen::disjoint_union(gen::path(3), gen::cycle(4));
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[6]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(num_connected_components(g), 2);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(gen::path(4)));
}

TEST(Algorithms, Diameter) {
  EXPECT_EQ(diameter(gen::path(7)), 6);
  EXPECT_EQ(diameter(gen::cycle(8)), 4);
  EXPECT_EQ(diameter(gen::clique(5)), 1);
  EXPECT_EQ(diameter(gen::star(9)), 2);
  EXPECT_THROW(diameter(gen::disjoint_union(gen::path(2), gen::path(2))),
               std::invalid_argument);
}

TEST(Algorithms, IsAcyclic) {
  EXPECT_TRUE(is_acyclic(gen::path(5)));
  EXPECT_TRUE(is_acyclic(gen::binary_tree(3)));
  EXPECT_FALSE(is_acyclic(gen::cycle(3)));
  EXPECT_TRUE(is_acyclic(gen::disjoint_union(gen::path(3), gen::path(2))));
}

TEST(Algorithms, DegeneracyOrder) {
  const auto [order_tree, k_tree] = degeneracy_order(gen::binary_tree(4));
  EXPECT_EQ(k_tree, 1);
  const auto [order_clique, k_clique] = degeneracy_order(gen::clique(5));
  EXPECT_EQ(k_clique, 4);
  const auto [order_grid, k_grid] = degeneracy_order(gen::grid(4, 4));
  EXPECT_EQ(k_grid, 2);
}

TEST(Algorithms, GreedyColoringIsProper) {
  const Graph g = gen::grid(4, 4);
  auto [order, k] = degeneracy_order(g);
  std::reverse(order.begin(), order.end());
  const auto color = greedy_coloring(g, order);
  for (const Edge& e : g.edges()) EXPECT_NE(color[e.u], color[e.v]);
  for (int c : color) EXPECT_LE(c, k);  // degeneracy+1 colors suffice
}

TEST(Algorithms, KruskalOnUnitWeightsIsSpanningTree) {
  const Graph g = gen::grid(3, 3);
  const auto tree = kruskal_mst(g);
  EXPECT_TRUE(is_spanning_tree(g, tree));
  EXPECT_EQ(total_edge_weight(g, tree), 8);
}

TEST(Algorithms, KruskalPicksLightEdges) {
  Graph g = gen::cycle(4);
  g.set_edge_weight(g.edge_id(0, 1), 10);
  const auto tree = kruskal_mst(g);
  EXPECT_TRUE(is_spanning_tree(g, tree));
  EXPECT_EQ(total_edge_weight(g, tree), 3);
}

TEST(Algorithms, IsSpanningTreeRejects) {
  const Graph g = gen::cycle(4);
  // wrong size
  EXPECT_FALSE(is_spanning_tree(g, {0, 1}));
  // contains a cycle when all 4 edges present
  EXPECT_FALSE(is_spanning_tree(g, {0, 1, 2, 3}));
}

TEST(Algorithms, IsBipartite) {
  EXPECT_TRUE(is_bipartite(gen::path(6)));
  EXPECT_TRUE(is_bipartite(gen::cycle(6)));
  EXPECT_FALSE(is_bipartite(gen::cycle(5)));
  EXPECT_TRUE(is_bipartite(gen::complete_bipartite(3, 4)));
  EXPECT_FALSE(is_bipartite(gen::clique(3)));
  EXPECT_TRUE(is_bipartite(gen::disjoint_union(gen::path(3), gen::cycle(4))));
  EXPECT_FALSE(is_bipartite(gen::disjoint_union(gen::path(3), gen::cycle(5))));
}

TEST(Algorithms, Girth) {
  EXPECT_FALSE(girth(gen::path(5)).has_value());
  EXPECT_FALSE(girth(gen::binary_tree(3)).has_value());
  EXPECT_EQ(girth(gen::cycle(7)), 7);
  EXPECT_EQ(girth(gen::clique(4)), 3);
  EXPECT_EQ(girth(gen::grid(3, 3)), 4);
  EXPECT_EQ(girth(gen::complete_bipartite(2, 3)), 4);
}

TEST(Algorithms, CoreNumbers) {
  const auto tree = core_numbers(gen::binary_tree(3));
  for (int c : tree) EXPECT_EQ(c, 1);
  const auto k4 = core_numbers(gen::clique(4));
  for (int c : k4) EXPECT_EQ(c, 3);
  // star: center and leaves all 1-core
  const auto star = core_numbers(gen::star(5));
  for (int c : star) EXPECT_EQ(c, 1);
  // max core == degeneracy
  gen::Rng rng(5);
  const Graph g = gen::random_connected(12, 10, rng);
  const auto cores = core_numbers(g);
  const auto [order, degeneracy] = degeneracy_order(g);
  EXPECT_EQ(*std::max_element(cores.begin(), cores.end()), degeneracy);
}

}  // namespace
}  // namespace dmc
