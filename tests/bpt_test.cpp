// Unit tests of the BPT machinery: gluing matrices, plan compilation,
// type interning, composition, Selected(), and the assigned-type fold.
#include <gtest/gtest.h>

#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "seq/courcelle.hpp"

namespace dmc::bpt {
namespace {

using mso::Sort;

TEST(Gluing, PairIndexIsTriangular) {
  // tau = 4: pairs (0,1)(0,2)(0,3)(1,2)(1,3)(2,3) -> 0..5
  EXPECT_EQ(pair_index(0, 1, 4), 0);
  EXPECT_EQ(pair_index(0, 3, 4), 2);
  EXPECT_EQ(pair_index(1, 2, 4), 3);
  EXPECT_EQ(pair_index(2, 3, 4), 5);
  EXPECT_EQ(pair_index(3, 2, 4), 5);  // order-insensitive
  // distinct indices overall
  std::set<int> seen;
  for (int i = 0; i < 5; ++i)
    for (int j = i + 1; j < 5; ++j) EXPECT_TRUE(seen.insert(pair_index(i, j, 5)).second);
}

TEST(Gluing, ValidateRejectsBadMatrices) {
  GluingMatrix empty_row;
  empty_row.rows = {{-1, -1}};
  EXPECT_THROW(empty_row.validate(1, 1), std::invalid_argument);
  GluingMatrix reused;
  reused.rows = {{0, -1}, {0, -1}};
  EXPECT_THROW(reused.validate(1, 0), std::invalid_argument);
  GluingMatrix out_of_range;
  out_of_range.rows = {{2, -1}};
  EXPECT_THROW(out_of_range.validate(1, 0), std::invalid_argument);
  GluingMatrix ok = identity_gluing(3);
  EXPECT_NO_THROW(ok.validate(3, 3));
}

TEST(Plan, MatrixForMapsSharedIds) {
  const auto m = matrix_for({2, 5, 9}, {2, 9}, {5, 9});
  ASSERT_EQ(m.rows.size(), 3u);
  EXPECT_EQ(m.rows[0], (std::array<int, 2>{0, -1}));
  EXPECT_EQ(m.rows[1], (std::array<int, 2>{-1, 0}));
  EXPECT_EQ(m.rows[2], (std::array<int, 2>{1, 1}));
  EXPECT_THROW(matrix_for({7}, {2}, {3}), std::invalid_argument);
}

TEST(Plan, BaseBagStructure) {
  // Bag {0,1,2} of a triangle: 3 K1 nodes, 2 vertex glues, 3 K2 + glues.
  const Graph g = gen::clique(3);
  Plan plan;
  const int root = append_base_bag(plan, g, {0, 1, 2});
  EXPECT_EQ(plan.at(root).terminals, (std::vector<VertexId>{0, 1, 2}));
  int k1 = 0, k2 = 0, glue = 0;
  for (const auto& n : plan.nodes) {
    k1 += n.kind == PlanNode::Kind::K1;
    k2 += n.kind == PlanNode::Kind::K2;
    glue += n.kind == PlanNode::Kind::Glue;
  }
  EXPECT_EQ(k1, 3);
  EXPECT_EQ(k2, 3);
  EXPECT_EQ(glue, 2 + 3);
  EXPECT_THROW(append_base_bag(plan, g, {2, 1}), std::invalid_argument);
  EXPECT_THROW(append_base_bag(plan, g, {}), std::invalid_argument);
}

TEST(Plan, NodePlanHasInputsInOrder) {
  const Graph g = gen::path(3);
  const Plan plan = build_node_plan(g, {0}, {{0, 1}, {0, 2}});
  EXPECT_EQ(plan.num_inputs, 2);
  int inputs_seen = 0;
  for (const auto& n : plan.nodes)
    if (n.kind == PlanNode::Kind::Input) {
      EXPECT_EQ(n.input, inputs_seen);
      ++inputs_seen;
    }
  EXPECT_EQ(inputs_seen, 2);
}

TEST(Plan, GlobalPlanRejectsInvalidDecomposition) {
  const Graph g = gen::cycle(4);
  TreeDecomposition td;
  td.parent = {-1};
  td.bags = {{0, 1}};
  EXPECT_THROW(build_global_plan(g, td), std::invalid_argument);
}

TEST(Engine, InterningIsIdempotent) {
  const auto lowered = mso::lower(mso::lib::connected());
  Engine engine(config_for(*lowered));
  const TypeId a = engine.k1(0, {});
  const TypeId b = engine.k1(0, {});
  EXPECT_EQ(a, b);
  const TypeId c = engine.k2(0, 0, 0, {});
  EXPECT_NE(a, c);
  EXPECT_EQ(c, engine.k2(0, 0, 0, {}));
}

TEST(Engine, ComposeIsDeterministicAndMemoized) {
  const auto lowered = mso::lower(mso::lib::connected());
  Engine engine(config_for(*lowered));
  const TypeId k1a = engine.k1(0, {});
  const TypeId k2a = engine.k2(0, 0, 0, {});
  GluingMatrix m;
  m.rows = {{0, 0}, {-1, 1}};  // identify k1's terminal with k2's first
  const TypeId c1 = engine.compose(m, k1a, k2a);
  const TypeId c2 = engine.compose(m, k1a, k2a);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, kInvalidType);
}

TEST(Engine, TypeLimitEnforced) {
  const auto lowered = mso::lower(mso::lib::triangle_free());
  Engine engine(config_for(*lowered));
  engine.set_type_limit(4);
  EXPECT_THROW(engine.k2(0, 0, 0, {}), std::runtime_error);
}

TEST(Engine, ConfigForDetectsFeatures) {
  {
    const auto cfg = config_for(*mso::lower(mso::lib::connected()));
    EXPECT_EQ(cfg.rank, 1);
    EXPECT_TRUE(cfg.features.full);     // full() used
    EXPECT_TRUE(cfg.features.border);   // border() used
    EXPECT_FALSE(cfg.features.adjsets); // no adj atomic
    EXPECT_FALSE(cfg.features.term_adj);
    EXPECT_TRUE(cfg.vertex_exts);
    EXPECT_FALSE(cfg.edge_exts);
  }
  {
    const auto cfg = config_for(*mso::lower(mso::lib::triangle_free()));
    EXPECT_EQ(cfg.rank, 3);
    EXPECT_TRUE(cfg.features.adjsets);
    EXPECT_TRUE(cfg.features.subsets);  // distinctness via sub()
    EXPECT_EQ(cfg.features.hidden_cap, 2);  // sing() guards
    // all three quantifier levels are singleton-guarded FO variables
    for (int level = 1; level <= 3; ++level)
      EXPECT_EQ(cfg.vertex_mode[level], ExtMode::SingletonOnly) << level;
  }
  {
    const std::vector<std::pair<std::string, Sort>> frees{
        {"F", Sort::EdgeSet}};
    const auto cfg =
        config_for(*mso::lower(mso::lib::spanning_connected(), frees), frees);
    EXPECT_TRUE(cfg.features.term_adj);  // edge-sort slot present
    EXPECT_TRUE(cfg.features.crosses);
  }
}

TEST(Engine, ConfigForRejectsNonLoweredFormulas) {
  EXPECT_THROW(config_for(*mso::lib::triangle_free()), std::invalid_argument);
  EXPECT_THROW(config_for(*mso::member("x", "X")), std::invalid_argument);
}

TEST(Engine, ConfigForRejectsTooManySlots) {
  // rank 9 via nested singleton quantifiers exceeds kMaxSlots.
  mso::FormulaPtr f = mso::adj("x0", "x1");
  for (int i = 8; i >= 0; --i)
    f = mso::exists("x" + std::to_string(i), Sort::Vertex, f);
  EXPECT_THROW(config_for(*mso::lower(f)), std::invalid_argument);
}

TEST(Tables, SelectedVerticesAndEdgesMatchAssignment) {
  // Use the OptSolver on a tiny graph and check the root classes' traces.
  const Graph g = gen::path(3);
  const std::vector<std::pair<std::string, Sort>> frees{{"S", Sort::VertexSet}};
  const auto lowered = mso::lower(mso::lib::independent_set(), frees);
  Engine engine(config_for(*lowered, frees));
  const auto td = seq::decomposition_for(g);
  const auto plan = build_global_plan(g, td);
  OptSolver solver(engine, plan, g);
  for (const auto& [c, w] : solver.root_table()) {
    const auto sol = solver.reconstruct(c);
    const auto selected = selected_vertices(
        engine, c, plan.at(plan.root).terminals, 0);
    // Every selected terminal must be marked in the reconstruction.
    for (VertexId v : selected) EXPECT_TRUE(sol.vertices[v]);
  }
}

TEST(Tables, FoldAssignedMatchesBruteForceClassMembership) {
  // The class of a *fixed* assignment must evaluate exactly like the brute
  // force on the same assignment.
  gen::Rng rng(77);
  const Graph g = gen::random_bounded_treedepth(6, 3, 0.5, rng);
  const std::vector<std::pair<std::string, Sort>> frees{{"S", Sort::VertexSet}};
  const auto lowered = mso::lower(mso::lib::dominating_set(), frees);
  Engine engine(config_for(*lowered, frees));
  Evaluator eval(engine, lowered, frees);
  const auto td = seq::decomposition_for(g);
  const auto plan = build_global_plan(g, td);
  for (std::uint64_t mask = 0; mask < (1u << g.num_vertices()); ++mask) {
    std::vector<bool> vin(g.num_vertices());
    for (int v = 0; v < g.num_vertices(); ++v) vin[v] = (mask >> v) & 1;
    const TypeId c = fold_assigned_type(engine, plan, g, vin, {});
    const bool via_engine = eval.eval(c);
    const bool via_brute = mso::evaluate(g, *mso::lib::dominating_set(),
                                         {{"S", mso::Value::vertex_set(mask)}});
    EXPECT_EQ(via_engine, via_brute) << "mask=" << mask;
  }
}

TEST(Tables, FoldTypeRequiresNoFreeSlots) {
  const std::vector<std::pair<std::string, Sort>> frees{{"S", Sort::VertexSet}};
  const auto lowered = mso::lower(mso::lib::independent_set(), frees);
  Engine engine(config_for(*lowered, frees));
  const Graph g = gen::path(2);
  const auto plan = build_global_plan(g, seq::decomposition_for(g));
  EXPECT_THROW(fold_type(engine, plan, g), std::invalid_argument);
}

TEST(Tables, OptSolverRejectsWrongSlotCount) {
  const auto lowered = mso::lower(mso::lib::connected());
  Engine engine(config_for(*lowered));
  const Graph g = gen::path(2);
  const auto plan = build_global_plan(g, seq::decomposition_for(g));
  EXPECT_THROW(OptSolver(engine, plan, g), std::invalid_argument);
}

TEST(Engine, AblationsPreserveVerdicts) {
  gen::Rng rng(88);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::random_bounded_treedepth(7, 2, 0.5, rng);
    const auto lowered = mso::lower(mso::lib::triangle_free());
    const auto td = seq::decomposition_for(g);
    const auto plan = build_global_plan(g, td);
    bool verdicts[3];
    std::size_t types[3];
    for (int variant = 0; variant < 3; ++variant) {
      EngineConfig cfg = config_for(*lowered);
      if (variant >= 1) cfg = without_singleton_modes(cfg);
      if (variant >= 2) cfg = without_feature_pruning(cfg);
      Engine engine(cfg);
      const TypeId root = fold_type(engine, plan, g);
      Evaluator eval(engine, lowered);
      verdicts[variant] = eval.eval(root);
      types[variant] = engine.num_types();
    }
    EXPECT_EQ(verdicts[0], verdicts[1]);
    EXPECT_EQ(verdicts[0], verdicts[2]);
    EXPECT_LE(types[0], types[1]);  // optimizations only shrink the universe
  }
}

}  // namespace
}  // namespace dmc::bpt
