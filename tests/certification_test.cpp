// Distributed certification scheme (the Bousquet-Feuilloley-Pierron setting
// realized on the BPT engine): completeness on honest certificates and
// soundness against tampering.
#include "dist/certification.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"

namespace dmc::dist {
namespace {

namespace lib = mso::lib;

Graph yes_instance() {
  // A triangle-free bounded-treedepth graph.
  gen::Rng rng(12);
  for (;;) {
    const Graph g = gen::random_bounded_treedepth(9, 3, 0.3, rng);
    if (mso::evaluate(g, *lib::triangle_free())) return g;
  }
}

TEST(Certification, CompletenessOnYesInstances) {
  const Graph g = yes_instance();
  const auto cert = prove_mso(g, lib::triangle_free());
  const auto result = verify_mso(g, cert);
  EXPECT_TRUE(result.all_accept);
  EXPECT_GT(cert.max_certificate_bits, 0);
}

TEST(Certification, HonestProverOnNoInstanceIsRejectedAtRoot) {
  // K3 contains a triangle; the root's verdict check must fail.
  const Graph g = gen::clique(3);
  const auto cert = prove_mso(g, lib::triangle_free());
  const auto result = verify_mso(g, cert);
  EXPECT_FALSE(result.all_accept);
}

TEST(Certification, SoundnessAgainstForgedVerdict) {
  // Flip the root's accepting bit and class on a no-instance: some check
  // must still fail (the class recomputation pins the truth).
  const Graph g = gen::clique(3);
  auto cert = prove_mso(g, lib::triangle_free());
  for (auto& c : cert.certs) {
    if (c.path.size() == 1) c.accepting = true;
  }
  EXPECT_FALSE(verify_mso(g, cert).all_accept);
}

TEST(Certification, SoundnessAgainstForgedClass) {
  const Graph g = yes_instance();
  auto cert = prove_mso(g, lib::triangle_free());
  ASSERT_TRUE(verify_mso(g, cert).all_accept);
  // Corrupt one node's class claim.
  cert.certs[g.num_vertices() / 2].subtree_class += 1;
  EXPECT_FALSE(verify_mso(g, cert).all_accept);
}

TEST(Certification, SoundnessAgainstForgedPath) {
  const Graph g = yes_instance();
  auto cert = prove_mso(g, lib::triangle_free());
  ASSERT_TRUE(verify_mso(g, cert).all_accept);
  // Swap two entries in a deep node's path.
  for (auto& c : cert.certs) {
    if (c.path.size() >= 3) {
      std::swap(c.path[0], c.path[1]);
      break;
    }
  }
  EXPECT_FALSE(verify_mso(g, cert).all_accept);
}

TEST(Certification, SoundnessAgainstForgedAdjacency) {
  const Graph g = yes_instance();
  auto cert = prove_mso(g, lib::triangle_free());
  ASSERT_TRUE(verify_mso(g, cert).all_accept);
  // Claim a nonexistent bag edge at a deep node (or drop an existing one).
  for (auto& c : cert.certs) {
    if (c.path.size() >= 2) {
      c.bag_adj ^= 1ull;  // flip the (0,1) pair
      break;
    }
  }
  EXPECT_FALSE(verify_mso(g, cert).all_accept);
}

TEST(Certification, LabeledFormulas) {
  // Proper red/blue coloring of a star, certified; then corrupt a label.
  Graph g = gen::star(4);
  g.set_vertex_label("red", 0);
  for (VertexId v = 1; v <= 4; ++v) g.set_vertex_label("blue", v);
  auto cert = prove_mso(g, lib::properly_2_colored());
  EXPECT_TRUE(verify_mso(g, cert).all_accept);
  // Tamper: claim a wrong label for an ancestor in some deep certificate.
  bool tampered = false;
  for (auto& c : cert.certs) {
    if (c.path.size() >= 2 && !c.vlabels.empty()) {
      c.vlabels[0] ^= 3u;  // flip red/blue of the root entry
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  EXPECT_FALSE(verify_mso(g, cert).all_accept);
}

TEST(Certification, CertificateSizeIsLogarithmicForFixedTreedepth) {
  // Same family, growing n: certificate bits grow like log n.
  long bits_small = 0, bits_large = 0;
  {
    gen::Rng rng(5);
    const Graph g = gen::random_bounded_treedepth(16, 3, 0.3, rng);
    bits_small = prove_mso(g, lib::connected()).max_certificate_bits;
  }
  {
    gen::Rng rng(5);
    const Graph g = gen::random_bounded_treedepth(256, 3, 0.3, rng);
    bits_large = prove_mso(g, lib::connected()).max_certificate_bits;
  }
  EXPECT_GT(bits_small, 0);
  EXPECT_LE(bits_large, 2 * bits_small);  // log factor only
}

TEST(Certification, RejectsDisconnected) {
  EXPECT_THROW(
      prove_mso(gen::disjoint_union(gen::path(2), gen::path(2)),
                lib::connected()),
      std::invalid_argument);
}

}  // namespace
}  // namespace dmc::dist
