// Churn engine suite (src/churn; docs/ROBUSTNESS.md "Churn and repair"):
// script parsing, batch application, incremental elimination-tree repair
// validity, coordinator-side bag mirroring, incremental-vs-from-scratch
// digest equality across all pipelines, and fault-composed recovery.
#include <gtest/gtest.h>

#include <stdexcept>

#include "churn/engine.hpp"
#include "churn/repair.hpp"
#include "churn/script.hpp"
#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "td/elimination_forest.hpp"

namespace dmc::churn {
namespace {

using mso::Sort;
namespace lib = mso::lib;

Graph btd_graph(unsigned seed, int n = 10, int d = 3, double p = 0.4) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, p, rng);
}

// --- script parsing -----------------------------------------------------------

TEST(ChurnScript, ParsesBatchesAndOptions) {
  const ChurnScript s =
      parse_churn_script("add=0-2,del=1-3;delv=4;addv=0+1,random=2,seed=9");
  ASSERT_EQ(s.batches.size(), 3u);
  EXPECT_EQ(s.batches[0].size(), 2u);
  EXPECT_EQ(s.batches[0][0].kind, ChurnEvent::Kind::kAddEdge);
  EXPECT_EQ(s.batches[0][1].kind, ChurnEvent::Kind::kDelEdge);
  EXPECT_EQ(s.batches[1][0].kind, ChurnEvent::Kind::kDelVertex);
  EXPECT_EQ(s.batches[2][0].kind, ChurnEvent::Kind::kAddVertex);
  EXPECT_EQ(s.batches[2][0].neighbors, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(s.random_events, 2);
  EXPECT_EQ(s.seed, 9u);
  EXPECT_TRUE(s.verify);
}

TEST(ChurnScript, RoundTripsThroughFormat) {
  const char* spec = "add=0-2;delv=4;random=3,seed=7,verify=off";
  const ChurnScript s = parse_churn_script(spec);
  const ChurnScript again = parse_churn_script(format_churn_script(s));
  EXPECT_EQ(again.batches.size(), s.batches.size());
  EXPECT_EQ(again.random_events, s.random_events);
  EXPECT_EQ(again.seed, s.seed);
  EXPECT_EQ(again.verify, s.verify);
}

TEST(ChurnScript, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_churn_script("add=0"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("add=0-0"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("wat=1-2"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("random=1,random=2"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("seed=1,seed=2"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("random=-1"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("random=999999"), std::invalid_argument);
  EXPECT_THROW(parse_churn_script("verify=maybe"), std::invalid_argument);
}

// --- batch application --------------------------------------------------------

TEST(ChurnApply, EdgeEventsValidateAgainstGraph) {
  const Graph g = gen::path(4);  // 0-1-2-3
  ChurnEvent dup{ChurnEvent::Kind::kAddEdge, 0, 1, {}};
  EXPECT_THROW(apply_batch(g, {dup}, nullptr), std::invalid_argument);
  ChurnEvent range{ChurnEvent::Kind::kAddEdge, 0, 9, {}};
  EXPECT_THROW(apply_batch(g, {range}, nullptr), std::invalid_argument);
  // Deleting a bridge would disconnect the graph.
  ChurnEvent bridge{ChurnEvent::Kind::kDelEdge, 1, 2, {}};
  EXPECT_THROW(apply_batch(g, {bridge}, nullptr), std::invalid_argument);
  // Chord + delete is fine.
  ChurnEvent chord{ChurnEvent::Kind::kAddEdge, 0, 2, {}};
  std::vector<VertexId> map;
  const Graph g2 = apply_batch(g, {chord, ChurnEvent{ChurnEvent::Kind::kDelEdge,
                                                     0, 1, {}}},
                               &map);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 1));
  EXPECT_EQ(map, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(ChurnApply, VertexDeletionRenumbersAndComposes) {
  const Graph g = gen::cycle(5);
  ChurnEvent del{ChurnEvent::Kind::kDelVertex, 1, -1, {}};
  std::vector<VertexId> map;
  const Graph g2 = apply_batch(g, {del}, &map);
  ASSERT_EQ(g2.num_vertices(), 4);
  ASSERT_EQ(map.size(), 5u);
  EXPECT_EQ(map[1], -1);
  for (VertexId v : {0, 2, 3, 4}) EXPECT_GE(map[v], 0);
  // Surviving adjacency is preserved through the renumbering.
  EXPECT_TRUE(g2.has_edge(map[2], map[3]));
  EXPECT_TRUE(g2.has_edge(map[3], map[4]));
}

TEST(ChurnApply, VertexAdditionAttachesNeighbors) {
  const Graph g = gen::path(3);
  ChurnEvent add{ChurnEvent::Kind::kAddVertex, -1, -1, {0, 2}};
  std::vector<VertexId> map;
  const Graph g2 = apply_batch(g, {add}, &map);
  ASSERT_EQ(g2.num_vertices(), 4);
  EXPECT_EQ(map.size(), 3u);  // old vertices only
  EXPECT_TRUE(g2.has_edge(3, 0));
  EXPECT_TRUE(g2.has_edge(3, 2));
}

TEST(ChurnApply, RandomEventsKeepGraphConnectedAndSimple) {
  Graph g = btd_graph(3, 10, 3, 0.4);
  for (int i = 0; i < 40; ++i) {
    const ChurnEvent e = random_event(g, 42, i);
    g = apply_batch(g, {e}, nullptr);  // apply_batch revalidates everything
    ASSERT_GE(g.num_vertices(), 2);
  }
}

// --- repair -------------------------------------------------------------------

void expect_valid_repair(const Graph& new_g, const TreePatch& patch, int d) {
  ASSERT_NE(patch.kind, RepairKind::kFailed) << patch.reason;
  ASSERT_TRUE(patch.tree.success);
  const EliminationForest forest(patch.tree.parent);
  EXPECT_TRUE(forest.valid_for(new_g));
  EXPECT_TRUE(forest.is_subgraph_of(new_g));
  EXPECT_EQ(forest.roots().size(), 1u);
  EXPECT_LE(forest.depth(), (1 << d) - 1);
  ASSERT_EQ(patch.dirty.size(), static_cast<std::size_t>(new_g.num_vertices()));
}

TEST(ChurnRepair, SurvivesRandomChurnSequences) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    Graph g = btd_graph(seed, 12, 3, 0.4);
    congest::Network net(g, {.id_seed = seed});
    dist::ElimTreeResult tree = dist::run_elim_tree(net, 3);
    ASSERT_TRUE(tree.success);
    int repaired = 0;
    for (int i = 0; i < 25; ++i) {
      const ChurnEvent e = random_event(g, 100 + seed, i);
      std::vector<VertexId> map;
      const Graph next = apply_batch(g, {e}, &map);
      const TreePatch patch = repair_tree(g, tree, next, map, 3);
      if (patch.kind == RepairKind::kFailed) {
        // Legitimate: the repair budget 2^d - 1 may be unreachable from
        // this shape. Rebuild from scratch and continue churning.
        congest::Network fresh(next, {.id_seed = seed});
        tree = dist::run_elim_tree(fresh, 3);
        if (!tree.success) break;  // budget genuinely exceeded
        g = next;
        continue;
      }
      expect_valid_repair(next, patch, 3);
      ++repaired;
      g = next;
      tree = patch.tree;
    }
    EXPECT_GT(repaired, 5) << "seed=" << seed;
  }
}

TEST(ChurnRepair, AncestorEdgeInsertIsRefoldOnly) {
  // On a path the elimination tree is a balanced separator tree; an edge
  // between a vertex and its tree ancestor leaves the shape intact.
  const Graph g = gen::path(8);  // td(P_8) = 4
  congest::Network net(g);
  const dist::ElimTreeResult tree = dist::run_elim_tree(net, 4);
  ASSERT_TRUE(tree.success);
  const EliminationForest forest(tree.parent);
  // Find an ancestor pair at distance >= 2 that is not already an edge.
  int u = -1, v = -1;
  for (int x = 0; x < g.num_vertices() && u < 0; ++x)
    for (int a : forest.root_path(x))
      if (a != x && !g.has_edge(x, a)) {
        u = x;
        v = a;
        break;
      }
  ASSERT_GE(u, 0) << "no non-adjacent ancestor pair in this tree";
  std::vector<VertexId> map;
  const Graph next = apply_batch(
      g, {ChurnEvent{ChurnEvent::Kind::kAddEdge, u, v, {}}}, &map);
  const TreePatch patch = repair_tree(g, tree, next, map, 4);
  EXPECT_EQ(patch.kind, RepairKind::kRefold);
  expect_valid_repair(next, patch, 4);
  // Dirt is confined to the deeper endpoint's subtree.
  int dirty = 0;
  for (char c : patch.dirty) dirty += c != 0;
  EXPECT_LT(dirty, next.num_vertices());
}

// --- coordinator-side bags ----------------------------------------------------

TEST(ChurnBags, MirrorsDistributedBagsExactly) {
  for (unsigned seed = 0; seed < 5; ++seed) {
    Graph g = btd_graph(seed + 20, 10, 3, 0.5);
    gen::Rng rng(seed);
    gen::randomize_weights(g, -3, 7, rng);
    g.set_vertex_label("red", 0);
    g.set_edge_label("mark", 0);
    congest::Network net(g, {.id_seed = seed + 1});
    const dist::ElimTreeResult tree = dist::run_elim_tree(net, 3);
    ASSERT_TRUE(tree.success);
    const dist::BagsResult protocol = dist::run_bags(net, tree, {"red"}, {"mark"});
    ASSERT_TRUE(protocol.run.ok());
    const auto mirror = bags_for_tree(net, tree, {"red"}, {"mark"});
    ASSERT_EQ(mirror.size(), protocol.bags.size());
    for (int v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(mirror[v].bag, protocol.bags[v].bag) << "v=" << v;
      EXPECT_EQ(mirror[v].weights, protocol.bags[v].weights) << "v=" << v;
      EXPECT_EQ(mirror[v].vlabel_bits, protocol.bags[v].vlabel_bits) << "v=" << v;
      ASSERT_EQ(mirror[v].edges.size(), protocol.bags[v].edges.size()) << "v=" << v;
      for (std::size_t i = 0; i < mirror[v].edges.size(); ++i) {
        EXPECT_EQ(mirror[v].edges[i].i, protocol.bags[v].edges[i].i);
        EXPECT_EQ(mirror[v].edges[i].j, protocol.bags[v].edges[i].j);
        EXPECT_EQ(mirror[v].edges[i].weight, protocol.bags[v].edges[i].weight);
        EXPECT_EQ(mirror[v].edges[i].elabel_bits,
                  protocol.bags[v].edges[i].elabel_bits);
      }
    }
  }
}

// --- engine: incremental == from-scratch --------------------------------------

Query decision_query() {
  Query q;
  q.pipeline = Pipeline::kDecision;
  q.formula = lib::triangle_free();
  return q;
}

Query count_query() {
  Query q;
  q.pipeline = Pipeline::kCount;
  q.formula = lib::independent_set_indicator();
  q.vars = {{"S", Sort::VertexSet}};
  return q;
}

Query maximize_query() {
  Query q;
  q.pipeline = Pipeline::kMaximize;
  q.formula = lib::independent_set();
  q.var = "S";
  q.var_sort = Sort::VertexSet;
  return q;
}

Query minimize_query() {
  Query q;
  q.pipeline = Pipeline::kMinimize;
  q.formula = lib::dominating_set();
  q.var = "S";
  q.var_sort = Sort::VertexSet;
  return q;
}

void expect_all_verified(const std::vector<StepOutcome>& outs) {
  // Random churn may legitimately push td(G) past the budget in later
  // epochs (or deepen the oracle's retry tree past the engine's terminal
  // limit); those epochs have no oracle verdict to compare against — the
  // outcome's note says why. Every verifiable epoch must digest-match, the
  // initial graph must fit the budget, and unverifiable epochs must stay a
  // small minority.
  ASSERT_FALSE(outs.empty());
  EXPECT_FALSE(outs.front().verdict.treedepth_exceeded);
  EXPECT_TRUE(outs.front().verified) << outs.front().note;
  int verified = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    ASSERT_TRUE(outs[i].ok()) << "epoch " << i << " degraded";
    if (!outs[i].verified) continue;
    ++verified;
    EXPECT_TRUE(outs[i].digest_ok)
        << "epoch " << i << ": incremental digest " << outs[i].digest
        << " != oracle " << outs[i].oracle_digest;
  }
  EXPECT_GE(3 * verified, 2 * static_cast<int>(outs.size()))
      << "too few oracle-verifiable epochs";
}

TEST(ChurnEngine, DecisionDigestsMatchOracleUnderRandomChurn) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    Options opts;
    opts.net.id_seed = seed;
    opts.d = 3;
    ChurnEngine engine(btd_graph(seed + 40, 10, 3, 0.4), decision_query(),
                       opts);
    ChurnScript script;
    script.random_events = 8;
    script.seed = 7 + seed;
    expect_all_verified(engine.run(script));
  }
}

TEST(ChurnEngine, CountDigestsMatchOracleUnderRandomChurn) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    Options opts;
    opts.net.id_seed = seed + 1;
    opts.d = 3;
    ChurnEngine engine(btd_graph(seed + 50, 9, 3, 0.4), count_query(), opts);
    ChurnScript script;
    script.random_events = 6;
    script.seed = 11 + seed;
    expect_all_verified(engine.run(script));
  }
}

TEST(ChurnEngine, MaximizeDigestsMatchOracleUnderRandomChurn) {
  for (unsigned seed = 0; seed < 2; ++seed) {
    Options opts;
    opts.d = 3;
    Graph g = btd_graph(seed + 60, 9, 3, 0.4);
    gen::Rng rng(seed);
    gen::randomize_weights(g, 1, 5, rng);
    ChurnEngine engine(std::move(g), maximize_query(), opts);
    ChurnScript script;
    script.random_events = 6;
    script.seed = 13 + seed;
    expect_all_verified(engine.run(script));
  }
}

TEST(ChurnEngine, MinimizeDigestsMatchOracleUnderScriptedChurn) {
  Options opts;
  opts.d = 4;  // td(C_8) = 4
  ChurnEngine engine(gen::cycle(8), minimize_query(), opts);
  const ChurnScript script =
      parse_churn_script("add=0-2;add=3-6;del=0-2;addv=1+4;random=4,seed=3");
  expect_all_verified(engine.run(script));
}

TEST(ChurnEngine, OptMarkedDigestsMatchOracleUnderChurn) {
  // Mark a fixed independent set; churn must not touch its optimality
  // verdict's agreement with the from-scratch run (the verdict itself may
  // flip as edges arrive — both sides must flip identically).
  Graph g = gen::cycle(8);
  for (int v = 0; v < 8; v += 2) g.set_vertex_label("marked", v);
  Query q;
  q.pipeline = Pipeline::kOptMarked;
  q.formula = lib::independent_set();
  q.var = "S";
  q.var_sort = Sort::VertexSet;
  Options opts;
  opts.d = 4;  // td(C_8) = 4
  ChurnEngine engine(std::move(g), q, opts);
  const ChurnScript script = parse_churn_script("add=1-3;del=1-3;add=0-4");
  expect_all_verified(engine.run(script));
}

TEST(ChurnEngine, LocalEditRefoldsOnlyASubtree) {
  // Star of triangles: churn inside one triangle must not refold the
  // others (td = 4: hub + one triangle).
  Options opts;
  opts.d = 4;
  ChurnEngine engine(gen::star_of_cliques(4, 3), decision_query(), opts);
  const StepOutcome epoch0 = engine.init();
  ASSERT_TRUE(epoch0.ok());
  const int n = engine.graph().num_vertices();
  ASSERT_TRUE(engine.tree().has_value());
  // Delete one edge inside a clique (cliques of size 4 stay connected).
  int u = -1, v = -1;
  for (EdgeId e = 0; e < engine.graph().num_edges() && u < 0; ++e) {
    const Edge& edge = engine.graph().edge(e);
    if (edge.u != 0 && edge.v != 0) {  // not a hub edge
      u = edge.u;
      v = edge.v;
    }
  }
  ASSERT_GE(u, 0);
  const StepOutcome out =
      engine.step({ChurnEvent{ChurnEvent::Kind::kDelEdge, u, v, {}}});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.status, StepStatus::kRecomputed);
  EXPECT_LT(out.refold_count, n);
  EXPECT_LT(out.folds, n);
  EXPECT_TRUE(!out.verified || out.digest_ok);
}

TEST(ChurnEngine, CacheReplayKeepsFoldCountAtRefoldCount) {
  // Star of triangles (td = 4): the elimination tree is shallow and
  // balanced, so an ancestor chord dirties one short root path only.
  Options opts;
  opts.d = 4;
  opts.verify = false;  // isolate the incremental path
  ChurnEngine engine(gen::star_of_cliques(4, 3), decision_query(), opts);
  ASSERT_TRUE(engine.init().ok());
  ASSERT_TRUE(engine.tree().has_value());
  const int n = engine.graph().num_vertices();
  // An ancestor chord is a pure refold epoch: folds == refold_count < n.
  // The refold closure is the dirty subtree plus its root path, so pick
  // the chord endpoint whose root path is shortest.
  const auto& tree = *engine.tree();
  const EliminationForest forest(tree.parent);
  int u = -1, v = -1;
  std::size_t best = static_cast<std::size_t>(n) + 1;
  for (int x = 0; x < n; ++x) {
    if (!tree.children[x].empty()) continue;  // leaves: dirty set == {x}
    const auto path = forest.root_path(x);
    for (int a : path)
      if (a != x && !engine.graph().has_edge(x, a) && path.size() < best) {
        u = x;
        v = a;
        best = path.size();
      }
  }
  ASSERT_GE(u, 0);
  const StepOutcome out =
      engine.step({ChurnEvent{ChurnEvent::Kind::kAddEdge, u, v, {}}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.status, StepStatus::kRefolded);
  EXPECT_EQ(out.folds, out.refold_count);
  EXPECT_LT(out.folds, n);
}

// --- fault composition --------------------------------------------------------

TEST(ChurnEngine, CrashMidSolveYieldsStructuredDegradedOutcome) {
  // Crash a node at a round the solve phase reaches. The incremental epoch
  // and the full-recompute fallback run under the same plan, so the step
  // must surface kDegraded — never a wrong verdict, never a throw.
  Options opts;
  opts.d = 3;
  opts.verify = false;
  opts.net.faults = congest::parse_fault_plan("crash=0@r1,seed=5");
  opts.net.track_phases = true;
  ChurnEngine engine(gen::path(8), decision_query(), opts);
  const StepOutcome epoch0 = engine.init();
  EXPECT_FALSE(epoch0.ok());
  EXPECT_EQ(epoch0.status, StepStatus::kDegraded);
  EXPECT_EQ(epoch0.run.status, congest::RunStatus::kCrashed);
  // The engine survives and the next epoch still yields a structured
  // outcome (full recompute path: no tree survived epoch 0).
  const StepOutcome out =
      engine.step({ChurnEvent{ChurnEvent::Kind::kAddEdge, 0, 2, {}}});
  EXPECT_EQ(out.status, StepStatus::kDegraded);
  EXPECT_EQ(out.run.status, congest::RunStatus::kCrashed);
}

TEST(ChurnEngine, FrameLossFallsBackAndStaysCorrect) {
  // Heavy frame loss: the reliable transport still delivers (retransmits),
  // so epochs complete — at higher physical round cost — and digests must
  // still match the clean oracle.
  for (unsigned seed = 0; seed < 2; ++seed) {
    Options opts;
    opts.d = 3;
    opts.net.faults =
        congest::parse_fault_plan("drop=0.3,seed=" + std::to_string(9 + seed));
    ChurnEngine engine(btd_graph(seed + 80, 8, 3, 0.4), decision_query(),
                       opts);
    ChurnScript script;
    script.random_events = 4;
    script.seed = 21 + seed;
    const auto outs = engine.run(script);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      ASSERT_TRUE(outs[i].ok()) << "epoch " << i;
      ASSERT_TRUE(outs[i].verified) << "epoch " << i << ": " << outs[i].note;
      EXPECT_TRUE(outs[i].digest_ok) << "epoch " << i;
    }
  }
}

TEST(ChurnEngine, DegradedStepKeepsStaleMarksForNextEpoch) {
  // Crash-stop defeats epoch 1's solve *and* its fallback; epoch 2 runs
  // fault-free (plan crashes at a round only reached when the crash node
  // still exists)... simplest deterministic variant: disable fallback and
  // check the stale refold flags force a full-strength refold once a later
  // clean engine run happens. Covered via: degraded step -> next step with
  // same engine completes and verifies against the oracle.
  Options opts;
  opts.d = 3;
  opts.fallback_full = false;
  opts.net.faults = congest::parse_fault_plan("crash=3@r2,seed=4");
  ChurnEngine faulty(gen::path(8), decision_query(), opts);
  EXPECT_FALSE(faulty.init().ok());

  // Same scenario, but the fault plan only crashes in epoch 0's round
  // window... emulate recovery by constructing a clean engine over the
  // same graph and comparing digests after one churn step.
  Options clean;
  clean.d = 3;
  ChurnEngine engine(gen::path(8), decision_query(), clean);
  ASSERT_TRUE(engine.init().ok());
  const StepOutcome out =
      engine.step({ChurnEvent{ChurnEvent::Kind::kAddEdge, 2, 4, {}}});
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out.verified);
  EXPECT_TRUE(out.digest_ok);
}

}  // namespace
}  // namespace dmc::churn
