// Determinism / order- / id-obliviousness harness (congest/conformance.hpp)
// over every dist protocol, plus injected-violation detection: a protocol
// that leaks node ids into its verdict and one that draws on rand() must
// both be flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>

#include "congest/conformance.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "dist/bags.hpp"
#include "dist/baseline.hpp"
#include "dist/certification.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/hfreeness.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

namespace dmc {
namespace {

using audit::check_conformance;
using audit::ConformanceOptions;
using audit::ConformanceReport;
using congest::Message;
using congest::Network;
using congest::NetworkConfig;
using congest::NodeCtx;
using mso::Sort;
namespace lib = mso::lib;

Graph btd_graph(unsigned seed, int n = 9, int d = 3, double p = 0.4) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, p, rng);
}

Graph clique(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

void expect_conformant(const ConformanceReport& report) {
  EXPECT_TRUE(report.ok()) << report.format();
  EXPECT_TRUE(report.deterministic);
  EXPECT_TRUE(report.order_oblivious);
  EXPECT_TRUE(report.id_oblivious);
  EXPECT_TRUE(report.divergences.empty());
}

// On asymmetric graphs the elimination-tree shape depends on which node
// wins each min-id election, so the round structure legitimately varies
// across id permutations; only the verdict must be invariant. The clique
// tests below assert the strict property where it provably holds.
ConformanceOptions verdict_only_seeds() {
  ConformanceOptions opts;
  opts.id_seeds = {1, 2, 3};
  opts.require_equal_rounds = false;
  return opts;
}

ConformanceOptions strict_seeds() {
  ConformanceOptions opts;
  opts.id_seeds = {1, 2, 3};
  return opts;
}

// --- all dist protocols pass the battery ------------------------------------

TEST(Conformance, Decision) {
  const Graph g = btd_graph(1);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const auto out = dist::run_decision(net, lib::triangle_free(), 3);
        return "holds=" + std::to_string(out.holds);
      },
      verdict_only_seeds()));
}

TEST(Conformance, Optimization) {
  const Graph g = btd_graph(2);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const auto out = dist::run_maximize(net, lib::independent_set(), "S",
                                            Sort::VertexSet, 3);
        return "best=" +
               (out.best_weight ? std::to_string(*out.best_weight) : "none");
      },
      verdict_only_seeds()));
}

TEST(Conformance, Counting) {
  const Graph g = btd_graph(3, 8);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const auto out = dist::run_count(net, lib::independent_set_indicator(),
                                         {{"S", Sort::VertexSet}}, 3);
        return "count=" + std::to_string(out.count);
      },
      verdict_only_seeds()));
}

TEST(Conformance, OptMarked) {
  const Graph g = btd_graph(4, 8);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const auto out = dist::run_optmarked(net, lib::independent_set(), "S",
                                             Sort::VertexSet, 3);
        return "sat=" + std::to_string(out.satisfies) +
               " opt=" + std::to_string(out.is_optimal);
      },
      verdict_only_seeds()));
}

TEST(Conformance, Baseline) {
  const Graph g = btd_graph(5, 8);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const auto out = dist::run_gather_baseline(net, lib::triangle_free());
        return "holds=" + std::to_string(out.holds);
      },
      verdict_only_seeds()));
}

TEST(Conformance, ElimTreeAndBags) {
  const Graph g = btd_graph(6);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        // Tree shape (and hence bag contents) is id-dependent by design;
        // the id-invariant verdict is whether construction succeeds and
        // the bags protocol runs audit-clean on top of it.
        const auto tree = dist::run_elim_tree(net, 3);
        if (!tree.success) return std::string("failed");
        dist::run_bags(net, tree, {}, {});
        return std::string("ok");
      },
      verdict_only_seeds()));
}

// On a clique every id permutation is a graph automorphism, so the strict
// property holds: identical verdict, round count, message count, declared
// bit volume, and per-round trace digests across all seeds. td(K4) = 4, so
// the budget must be 4.
TEST(Conformance, DecisionStrictOnClique) {
  const Graph g = clique(4);
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const auto out = dist::run_decision(net, lib::connected(), 4);
        return "holds=" + std::to_string(out.holds);
      },
      strict_seeds()));
}

// The congest primitives carry no shared interner, so their executions
// must be bit-identical even under reversed step order — the strongest
// setting the harness offers.
TEST(Conformance, PrimitivesStrictContent) {
  const Graph g = btd_graph(8);
  ConformanceOptions opts;
  opts.id_seeds = {1, 2, 3};
  // The broadcast depth follows the BFS tree rooted at whichever vertex
  // holds id 0, so round counts legitimately shift with the permutation.
  opts.require_equal_rounds = false;
  opts.order_compare_content = true;
  expect_conformant(check_conformance(
      g, {},
      [](Network& net) {
        const int budget = 2 * net.n();
        const auto leader = congest::run_leader_election(net, budget);
        const auto tree = congest::run_bfs_tree(net, budget);
        congest::run_broadcast(net, tree, 42);
        return "leader=" + std::to_string(leader.leader);
      },
      opts));
}

// hfreeness builds its own per-component networks, so it is exercised
// through the NetworkConfig overload rather than check_conformance: three
// id permutations must agree on the verdict and on every round statistic.
TEST(Conformance, HFreenessAcrossIdSeeds) {
  const Graph g = gen::grid(5, 5);
  const Graph h = gen::path(3);
  NetworkConfig cfg;
  cfg.audit = true;
  const auto base = dist::run_h_freeness_grid(g, 5, 5, h, 4, cfg);
  for (unsigned seed : {1u, 2u, 3u}) {
    NetworkConfig permuted = cfg;
    permuted.id_seed = seed;
    const auto out = dist::run_h_freeness_grid(g, 5, 5, h, 4, permuted);
    EXPECT_EQ(out.h_free, base.h_free) << "seed=" << seed;
    EXPECT_EQ(out.max_run_rounds, base.max_run_rounds) << "seed=" << seed;
    EXPECT_EQ(out.multiplexed_rounds, base.multiplexed_rounds)
        << "seed=" << seed;
  }
}

// Certification is message-free (prover/verifier work on the graph
// directly); determinism here means repeated prove/verify agree.
TEST(Conformance, CertificationDeterministic) {
  const Graph g = btd_graph(7);
  const auto c1 = dist::prove_mso(g, lib::triangle_free());
  const auto c2 = dist::prove_mso(g, lib::triangle_free());
  EXPECT_EQ(dist::verify_mso(g, c1).all_accept,
            dist::verify_mso(g, c2).all_accept);
  EXPECT_EQ(c1.max_certificate_bits, c2.max_certificate_bits);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(c1.certs[v].path, c2.certs[v].path);
    EXPECT_EQ(c1.certs[v].subtree_class, c2.certs[v].subtree_class);
  }
}

// --- three-seed verdict/round identity over every protocol ------------------

struct SeedCase {
  const char* name;
  std::string (*run)(Network&);
};

std::string run_decision_case(Network& net) {
  const auto out = dist::run_decision(net, lib::connected(), 4);
  return "holds=" + std::to_string(out.holds);
}
std::string run_optimize_case(Network& net) {
  const auto out =
      dist::run_minimize(net, lib::vertex_cover(), "S", Sort::VertexSet, 4);
  return "best=" +
         (out.best_weight ? std::to_string(*out.best_weight) : "none");
}
std::string run_count_case(Network& net) {
  const auto out = dist::run_count(net, lib::independent_set_indicator(),
                                   {{"S", Sort::VertexSet}}, 4);
  return "count=" + std::to_string(out.count);
}
std::string run_optmarked_case(Network& net) {
  const auto out = dist::run_optmarked(net, lib::independent_set(), "S",
                                       Sort::VertexSet, 4);
  return "sat=" + std::to_string(out.satisfies);
}
std::string run_baseline_case(Network& net) {
  const auto out = dist::run_gather_baseline(net, lib::acyclic());
  return "holds=" + std::to_string(out.holds);
}
std::string run_elim_tree_case(Network& net) {
  // The elimination tree of K4 is always a path: depth 4, regardless of
  // which ids the min-id elections happen to pick.
  const auto tree = dist::run_elim_tree(net, 4);
  if (!tree.success) return std::string("failed");
  int max_depth = 0;
  for (int d : tree.depth) max_depth = std::max(max_depth, d);
  return "depth=" + std::to_string(max_depth);
}

class SeedIdentity : public ::testing::TestWithParam<SeedCase> {};

// Exact round identity across id seeds is guaranteed on vertex-transitive
// graphs (any id permutation is an automorphism of K4, so the executions
// are isomorphic); td(K4) = 4 fixes the protocols' budget.
TEST_P(SeedIdentity, VerdictAndRoundsIdenticalAcrossIdSeeds) {
  const SeedCase& c = GetParam();
  const Graph g = clique(4);
  std::string base_verdict;
  long base_rounds = -1;
  long base_messages = -1;
  for (unsigned seed : {1u, 5u, 9u}) {
    Network net(g, {.id_seed = seed, .audit = true});
    const std::string verdict = c.run(net);
    if (base_rounds < 0) {
      base_verdict = verdict;
      base_rounds = net.stats().rounds;
      base_messages = net.stats().messages;
      continue;
    }
    EXPECT_EQ(verdict, base_verdict) << c.name << " seed=" << seed;
    EXPECT_EQ(net.stats().rounds, base_rounds) << c.name << " seed=" << seed;
    EXPECT_EQ(net.stats().messages, base_messages)
        << c.name << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SeedIdentity,
    ::testing::Values(SeedCase{"decision", run_decision_case},
                      SeedCase{"optimize", run_optimize_case},
                      SeedCase{"count", run_count_case},
                      SeedCase{"optmarked", run_optmarked_case},
                      SeedCase{"baseline", run_baseline_case},
                      SeedCase{"elim_tree", run_elim_tree_case}),
    [](const ::testing::TestParamInfo<SeedCase>& info) {
      return std::string(info.param.name);
    });

// --- injected violations are detected ---------------------------------------

// Leaks the id assignment: the "verdict" is the sum of ids seen at node 0,
// which changes under permutation (ids are fixed 0..n-1 as a *set*, but
// which id sits at vertex 0's neighbors varies). Messages themselves are
// conformant, so only the id-obliviousness check may fire.
class IdLeakProgram : public congest::NodeProgram {
 public:
  void on_round(NodeCtx& ctx) override {
    if (sent_) return;
    sent_ = true;
    ctx.send_all(Message(ctx.id(), congest::id_bits(ctx.n())));
  }
  bool done(const NodeCtx&) const override { return sent_; }
  bool sent_ = false;
};

TEST(ConformanceViolations, IdDependentVerdictDetected) {
  const Graph g = gen::path(5);  // asymmetric enough for tiny seeds
  const auto runner = [](Network& net) {
    std::vector<std::unique_ptr<congest::NodeProgram>> programs;
    for (int v = 0; v < net.n(); ++v)
      programs.push_back(std::make_unique<IdLeakProgram>());
    net.run(programs);
    // "Verdict" derived from an id, not from the graph property.
    return std::to_string(net.id_of_vertex(0));
  };
  ConformanceOptions opts;
  opts.id_seeds = {1, 2, 3};
  opts.require_equal_rounds = false;  // ids only leak into the verdict here
  const auto report = check_conformance(g, {}, runner, opts);
  EXPECT_TRUE(report.deterministic) << report.format();
  EXPECT_TRUE(report.order_oblivious) << report.format();
  EXPECT_FALSE(report.id_oblivious) << report.format();
  bool verdict_divergence = false;
  for (const auto& d : report.divergences)
    if (d.check == "id-obliviousness" &&
        d.detail.find("verdict") != std::string::npos)
      verdict_divergence = true;
  EXPECT_TRUE(verdict_divergence) << report.format();
}

// Draws its payload from rand(): the in-process stream advances between
// runs, so the identical re-run diverges in message content.
// dmc-lint would flag this line too; the comment below suppresses nothing
// at runtime — it documents the deliberate violation.
class RandProgram : public congest::NodeProgram {
 public:
  void on_round(NodeCtx& ctx) override {
    if (sent_) return;
    sent_ = true;
    const std::int64_t noisy =
        std::rand() % 1024;  // dmc-lint: allow(nondeterminism)
    ctx.send_all(Message(noisy, 12));
  }
  bool done(const NodeCtx&) const override { return sent_; }
  bool sent_ = false;
};

TEST(ConformanceViolations, RandDependentProtocolDetected) {
  std::srand(1234);  // dmc-lint: allow(nondeterminism)
  const Graph g = gen::path(4);
  const auto runner = [](Network& net) {
    std::vector<std::unique_ptr<congest::NodeProgram>> programs;
    for (int v = 0; v < net.n(); ++v)
      programs.push_back(std::make_unique<RandProgram>());
    net.run(programs);
    return std::string("done");
  };
  ConformanceOptions opts;
  opts.id_seeds = {};
  const auto report = check_conformance(g, {}, runner, opts);
  EXPECT_FALSE(report.deterministic) << report.format();
  bool content_divergence = false;
  for (const auto& d : report.divergences)
    if (d.check == "determinism") content_divergence = true;
  EXPECT_TRUE(content_divergence) << report.format();
}

// A protocol whose nodes communicate through a shared mutable counter
// breaks under reverse step order: the stamp a node draws depends on how
// many other nodes ran before it within the round, so the stamp node 0
// receives from its neighbor changes when the stepping is reversed.
class OrderLeakProgram : public congest::NodeProgram {
 public:
  explicit OrderLeakProgram(int* shared) : shared_(shared) {}
  void on_round(NodeCtx& ctx) override {
    if (const auto& got = ctx.recv(0)) {
      received_ = std::any_cast<std::int64_t>(got->value);
      finished_ = true;
      return;
    }
    const std::int64_t stamp = (*shared_)++;  // cross-node shared state
    ctx.send_all(Message(stamp, 16));
  }
  bool done(const NodeCtx&) const override { return finished_; }

  std::int64_t received() const { return received_; }

 private:
  int* shared_;
  std::int64_t received_ = -1;
  bool finished_ = false;
};

TEST(ConformanceViolations, StepOrderDependenceDetected) {
  const Graph g = gen::path(4);
  const auto runner = [](Network& net) {
    int shared = 0;
    std::vector<std::unique_ptr<congest::NodeProgram>> programs;
    for (int v = 0; v < net.n(); ++v)
      programs.push_back(std::make_unique<OrderLeakProgram>(&shared));
    net.run(programs);
    const auto* first = static_cast<OrderLeakProgram*>(programs[0].get());
    return "recv=" + std::to_string(first->received());
  };
  ConformanceOptions opts;
  opts.id_seeds = {};
  const auto report = check_conformance(g, {}, runner, opts);
  EXPECT_FALSE(report.order_oblivious) << report.format();
}

}  // namespace
}  // namespace dmc
