#include "congest/primitives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace dmc::congest {
namespace {

TEST(Primitives, LeaderElectionOnVariousTopologies) {
  for (unsigned seed : {0u, 3u, 9u}) {
    for (const Graph& g :
         {gen::path(9), gen::cycle(8), gen::star(7), gen::grid(3, 4)}) {
      Network net(g, {.id_seed = seed});
      const auto result = run_leader_election(net, g.num_vertices());
      EXPECT_EQ(result.leader, 0);
      for (VertexId known : result.known) EXPECT_EQ(known, 0);
    }
  }
}

TEST(Primitives, LeaderElectionInsufficientBudgetIsPartial) {
  // One flooding round on a long path cannot inform the far end.
  Network net(gen::path(10), {.id_seed = 5});
  const auto result = run_leader_election(net, 1);
  bool someone_wrong = false;
  for (VertexId known : result.known) someone_wrong |= known != 0;
  EXPECT_TRUE(someone_wrong);
}

TEST(Primitives, BfsTreeDepthsAreHopDistances) {
  const Graph g = gen::grid(4, 5);
  Network net(g, {.id_seed = 2});
  const auto tree = run_bfs_tree(net, g.num_vertices());
  const int root_vertex = net.vertex_of_id(tree.root_id);
  const auto dist = bfs_distances(g, root_vertex);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(tree.depth[v], dist[v]) << "v=" << v;
    if (v == root_vertex) {
      EXPECT_EQ(tree.parent[v], -1);
    } else {
      ASSERT_GE(tree.parent[v], 0);
      EXPECT_TRUE(g.has_edge(v, tree.parent[v]));
      EXPECT_EQ(tree.depth[v], tree.depth[tree.parent[v]] + 1);
    }
  }
}

TEST(Primitives, BroadcastReachesEveryone) {
  const Graph g = gen::binary_tree(4);
  Network net(g, {.id_seed = 4});
  const auto tree = run_bfs_tree(net, g.num_vertices());
  const auto result = run_broadcast(net, tree, 1234567);
  for (auto v : result.received) EXPECT_EQ(v, 1234567);
}

TEST(Primitives, AggregateSumAndMax) {
  const Graph g = gen::caterpillar(4, 2);
  Network net(g, {.id_seed = 6});
  const auto tree = run_bfs_tree(net, g.num_vertices());
  std::vector<std::int64_t> values(g.num_vertices());
  std::iota(values.begin(), values.end(), 1);  // 1..n
  const auto result = run_aggregate(net, tree, values);
  const std::int64_t n = g.num_vertices();
  EXPECT_EQ(result.sum, n * (n + 1) / 2);
  EXPECT_EQ(result.max, n);
}

TEST(Primitives, AggregateSingleVertex) {
  Network net(Graph(1));
  const auto tree = run_bfs_tree(net, 1);
  const auto result = run_aggregate(net, tree, {42});
  EXPECT_EQ(result.sum, 42);
  EXPECT_EQ(result.max, 42);
}

TEST(Primitives, RoundsScaleWithDiameterNotN) {
  // Stars of different sizes have the same diameter.
  long small = 0, large = 0;
  {
    Network net(gen::star(8));
    small = run_bfs_tree(net, 3).rounds;
  }
  {
    Network net(gen::star(64));
    large = run_bfs_tree(net, 3).rounds;
  }
  EXPECT_EQ(small, large);
}

}  // namespace
}  // namespace dmc::congest
