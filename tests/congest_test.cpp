#include "congest/network.hpp"

#include <gtest/gtest.h>

#include "congest/fragment.hpp"
#include "graph/generators.hpp"

namespace dmc::congest {
namespace {

/// Floods the minimum id; checks every node learns it.
class MinFlood : public NodeProgram {
 public:
  explicit MinFlood(int rounds) : rounds_(rounds) {}
  VertexId result = -1;

  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == 0) result = ctx.id();
    for (int p = 0; p < ctx.degree(); ++p) {
      const auto& msg = ctx.recv(p);
      if (msg) result = std::min(result, std::any_cast<VertexId>(msg->value));
    }
    if (ctx.round() < rounds_)
      ctx.send_all(Message(result, id_bits(ctx.n())));
  }
  bool done(const NodeCtx& ctx) const override {
    return ctx.round() >= rounds_;
  }

 private:
  int rounds_;
};

TEST(Congest, MinFloodConvergesOnPath) {
  const Graph g = gen::path(8);
  Network net(g, {.id_seed = 42});
  std::vector<std::unique_ptr<NodeProgram>> programs;
  std::vector<MinFlood*> handles;
  for (int v = 0; v < 8; ++v) {
    auto p = std::make_unique<MinFlood>(8);
    handles.push_back(p.get());
    programs.push_back(std::move(p));
  }
  net.run(programs);
  for (auto* h : handles) EXPECT_EQ(h->result, 0);
}

TEST(Congest, RoundsAndStatsAccounted) {
  const Graph g = gen::cycle(6);
  Network net(g);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 6; ++v) programs.push_back(std::make_unique<MinFlood>(3));
  const long rounds = net.run(programs);
  EXPECT_GE(rounds, 3);
  EXPECT_GT(net.stats().messages, 0);
  EXPECT_GT(net.stats().total_bits, 0);
  EXPECT_LE(net.stats().max_message_bits, net.bandwidth());
}

TEST(Congest, IdPermutationIsConsistent) {
  const Graph g = gen::star(5);
  Network net(g, {.id_seed = 7});
  for (int v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(net.vertex_of_id(net.id_of_vertex(v)), v);
}

TEST(Congest, RejectsDisconnectedAndEmpty) {
  EXPECT_THROW(Network(Graph(0)), std::invalid_argument);
  EXPECT_THROW(Network(gen::disjoint_union(gen::path(2), gen::path(2))),
               std::invalid_argument);
}

class Oversender : public NodeProgram {
 public:
  void on_round(NodeCtx& ctx) override {
    if (ctx.degree() > 0)
      ctx.send(0, Message(int{0}, ctx.bandwidth() + 1));
  }
  bool done(const NodeCtx&) const override { return false; }
};

TEST(Congest, EnforcesBandwidth) {
  Network net(gen::path(2));
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<Oversender>());
  programs.push_back(std::make_unique<Oversender>());
  EXPECT_THROW(net.run(programs), std::invalid_argument);
}

TEST(Congest, RejectsDoubleSendOnPort) {
  class DoubleSender : public NodeProgram {
   public:
    void on_round(NodeCtx& ctx) override {
      if (ctx.degree() > 0) {
        ctx.send(0, Message(int{1}, 8));
        ctx.send(0, Message(int{2}, 8));
      }
    }
    bool done(const NodeCtx&) const override { return false; }
  };
  Network net(gen::path(2));
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<DoubleSender>());
  programs.push_back(std::make_unique<DoubleSender>());
  EXPECT_THROW(net.run(programs), std::logic_error);
}

TEST(Congest, RoundLimitGuards) {
  class Forever : public NodeProgram {
    void on_round(NodeCtx&) override {}
    bool done(const NodeCtx&) const override { return false; }
  };
  Network net(gen::path(2), {.max_rounds = 10});
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::make_unique<Forever>());
  programs.push_back(std::make_unique<Forever>());
  EXPECT_THROW(net.run(programs), std::runtime_error);
}

TEST(Congest, NeighborIdsAndPorts) {
  const Graph g = gen::star(3);  // center 0
  Network net(g, {.id_seed = 3});
  class Check : public NodeProgram {
   public:
    void on_round(NodeCtx& ctx) override {
      for (int p = 0; p < ctx.degree(); ++p)
        EXPECT_EQ(ctx.port_of(ctx.neighbor_id(p)), p);
      EXPECT_EQ(ctx.port_of(ctx.id()), -1);  // not adjacent to self
    }
    bool done(const NodeCtx&) const override { return true; }
  };
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < g.num_vertices(); ++v)
    programs.push_back(std::make_unique<Check>());
  net.run(programs);
}

// --- fragmentation -----------------------------------------------------------

class FragSender : public NodeProgram {
 public:
  explicit FragSender(long bits) : bits_(bits) {}
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == 0 && ctx.degree() > 0)
      sender_.enqueue(0, std::string("payload"), bits_);
    sender_.pump(ctx);
  }
  bool done(const NodeCtx&) const override { return sender_.idle(); }

 private:
  long bits_;
  FragmentSender sender_;
};

class FragReceiver : public NodeProgram {
 public:
  std::string received;
  int arrival_round = -1;
  void on_round(NodeCtx& ctx) override {
    for (int p = 0; p < ctx.degree(); ++p)
      if (auto payload = poll_fragment(ctx, p)) {
        received = std::any_cast<std::string>(*payload);
        arrival_round = ctx.round();
      }
  }
  bool done(const NodeCtx&) const override { return !received.empty(); }
};

TEST(Congest, FragmentationPaysProportionalRounds) {
  const Graph g = gen::path(2);
  // Two runs: small payload vs 10x bandwidth payload.
  int small_round = 0, big_round = 0;
  for (int mode = 0; mode < 2; ++mode) {
    Network net(g);
    const long bits = mode == 0 ? 8 : 10L * net.bandwidth();
    auto s = std::make_unique<FragSender>(bits);
    auto r = std::make_unique<FragReceiver>();
    FragReceiver* rh = r.get();
    std::vector<std::unique_ptr<NodeProgram>> programs;
    programs.push_back(std::move(s));
    programs.push_back(std::move(r));
    net.run(programs);
    EXPECT_EQ(rh->received, "payload");
    (mode == 0 ? small_round : big_round) = rh->arrival_round;
  }
  EXPECT_GT(big_round, small_round + 5);  // ~10 chunks vs 1
}

class MultiPayloadSender : public NodeProgram {
 public:
  void on_round(NodeCtx& ctx) override {
    if (ctx.round() == 0 && ctx.degree() > 0) {
      // three payloads on one port; they must arrive in order
      sender_.enqueue(0, std::string("first"), 8);
      sender_.enqueue(0, std::string("second"), 3L * ctx.bandwidth());
      sender_.enqueue(0, std::string("third"), 8);
    }
    sender_.pump(ctx);
  }
  bool done(const NodeCtx&) const override { return sender_.idle(); }

 private:
  FragmentSender sender_;
};

class MultiPayloadReceiver : public NodeProgram {
 public:
  std::vector<std::string> received;
  void on_round(NodeCtx& ctx) override {
    for (int p = 0; p < ctx.degree(); ++p)
      if (auto payload = poll_fragment(ctx, p))
        received.push_back(std::any_cast<std::string>(*payload));
  }
  bool done(const NodeCtx&) const override { return received.size() == 3; }
};

TEST(Congest, FragmentQueuesDeliverInOrder) {
  Network net(gen::path(2));
  auto s = std::make_unique<MultiPayloadSender>();
  auto r = std::make_unique<MultiPayloadReceiver>();
  MultiPayloadReceiver* rh = r.get();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.push_back(std::move(s));
  programs.push_back(std::move(r));
  net.run(programs);
  ASSERT_EQ(rh->received.size(), 3u);
  EXPECT_EQ(rh->received[0], "first");
  EXPECT_EQ(rh->received[1], "second");
  EXPECT_EQ(rh->received[2], "third");
}

}  // namespace
}  // namespace dmc::congest
