// The backbone correctness suite: the BPT type engine + Algorithm 1 pipeline
// is validated against brute-force MSO semantics and the exact combinatorial
// oracles, across the formula library and randomized graph families.
#include "seq/courcelle.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"

namespace dmc {
namespace {

using mso::FormulaPtr;
using mso::Sort;
namespace lib = mso::lib;

Graph small_random(unsigned seed, int n = 7, int extra = 4) {
  gen::Rng rng(seed);
  return gen::random_connected(n, extra, rng);
}

TEST(Courcelle, DecideTriangleFreeKnownGraphs) {
  EXPECT_TRUE(seq::decide(gen::cycle(5), lib::triangle_free()));
  EXPECT_FALSE(seq::decide(gen::clique(3), lib::triangle_free()));
  EXPECT_FALSE(seq::decide(gen::clique(5), lib::triangle_free()));
  EXPECT_TRUE(seq::decide(gen::grid(3, 3), lib::triangle_free()));
  EXPECT_TRUE(seq::decide(gen::star(6), lib::triangle_free()));
}

TEST(Courcelle, DecideConnected) {
  EXPECT_TRUE(seq::decide(gen::path(6), lib::connected()));
  EXPECT_FALSE(seq::decide(gen::disjoint_union(gen::path(3), gen::cycle(3)),
                           lib::connected()));
  EXPECT_TRUE(seq::decide(Graph(1), lib::connected()));
}

TEST(Courcelle, DecideAcyclic) {
  EXPECT_TRUE(seq::decide(gen::path(6), lib::acyclic()));
  EXPECT_TRUE(seq::decide(gen::binary_tree(3), lib::acyclic()));
  EXPECT_FALSE(seq::decide(gen::cycle(6), lib::acyclic()));
  EXPECT_FALSE(seq::decide(gen::clique(3), lib::acyclic()));
}

TEST(Courcelle, DecideColorability) {
  EXPECT_TRUE(seq::decide(gen::cycle(6), lib::k_colorable(2)));
  EXPECT_FALSE(seq::decide(gen::cycle(5), lib::k_colorable(2)));
  EXPECT_TRUE(seq::decide(gen::cycle(5), lib::k_colorable(3)));
  EXPECT_TRUE(seq::decide(gen::clique(4), lib::not_3_colorable()));
  EXPECT_FALSE(seq::decide(gen::cycle(5), lib::not_3_colorable()));
}

TEST(Courcelle, DecideLabeled) {
  Graph g = gen::cycle(4);
  g.set_vertex_label("red", 0);
  g.set_vertex_label("blue", 1);
  g.set_vertex_label("red", 2);
  g.set_vertex_label("blue", 3);
  EXPECT_TRUE(seq::decide(g, lib::properly_2_colored()));
  g.set_vertex_label("blue", 1, false);
  g.set_vertex_label("red", 1);
  EXPECT_FALSE(seq::decide(g, lib::properly_2_colored()));
}

// The central property: engine decisions == brute-force MSO semantics on
// randomized graphs, for every closed formula in the library.
class OracleDecision
    : public ::testing::TestWithParam<std::pair<const char*, FormulaPtr>> {};

TEST_P(OracleDecision, MatchesBruteForce) {
  const auto& [name, formula] = GetParam();
  for (unsigned seed = 0; seed < 12; ++seed) {
    const Graph g = small_random(seed, 6 + seed % 3, 2 + seed % 4);
    const bool brute = mso::evaluate(g, *formula);
    const bool engine = seq::decide(g, formula);
    EXPECT_EQ(engine, brute) << name << " seed=" << seed << " " << g.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    FormulaLibrary, OracleDecision,
    ::testing::Values(
        std::make_pair("triangle_free", lib::triangle_free()),
        std::make_pair("connected", lib::connected()),
        std::make_pair("acyclic", lib::acyclic()),
        std::make_pair("2colorable", lib::k_colorable(2)),
        std::make_pair("isolated", lib::has_isolated_vertex()),
        std::make_pair("isolated_lowrank", lib::has_isolated_vertex_lowrank()),
        std::make_pair("deg3", lib::has_vertex_of_degree_ge(3))),
    [](const auto& info) { return info.param.first; });

TEST(Courcelle, DecideMatchesBruteForceOnBoundedTreedepthFamily) {
  gen::Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::random_bounded_treedepth(8, 3, 0.5, rng);
    EXPECT_EQ(seq::decide(g, lib::triangle_free()),
              mso::evaluate(g, *lib::triangle_free()));
    EXPECT_EQ(seq::decide(g, lib::acyclic()),
              mso::evaluate(g, *lib::acyclic()));
  }
}

TEST(Courcelle, MaximizeIndependentSet) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    gen::Rng rng(seed);
    Graph g = gen::random_connected(8, 4, rng);
    gen::randomize_weights(g, 1, 5, rng);
    const auto result =
        seq::maximize(g, lib::independent_set(), "S", Sort::VertexSet);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->weight, exact::max_weight_independent_set(g))
        << "seed=" << seed;
    // The reconstructed set must be independent and have the right weight.
    Weight w = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (result->vertices[v]) w += g.vertex_weight(v);
    EXPECT_EQ(w, result->weight);
    for (const Edge& e : g.edges())
      EXPECT_FALSE(result->vertices[e.u] && result->vertices[e.v]);
  }
}

TEST(Courcelle, MinimizeVertexCover) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    gen::Rng rng(seed + 100);
    Graph g = gen::random_connected(7, 4, rng);
    gen::randomize_weights(g, 1, 4, rng);
    const auto result =
        seq::minimize(g, lib::vertex_cover(), "S", Sort::VertexSet);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->weight, exact::min_weight_vertex_cover(g))
        << "seed=" << seed;
    for (const Edge& e : g.edges())
      EXPECT_TRUE(result->vertices[e.u] || result->vertices[e.v]);
  }
}

TEST(Courcelle, MinimizeDominatingSet) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    gen::Rng rng(seed + 200);
    const Graph g = gen::random_connected(7, 3, rng);
    const auto result =
        seq::minimize(g, lib::dominating_set(), "S", Sort::VertexSet);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->weight, exact::min_weight_dominating_set(g))
        << "seed=" << seed;
  }
}

TEST(Courcelle, MinimizeSpanningConnectedIsMst) {
  // With strictly positive weights, the min-weight connected spanning edge
  // set is the minimum spanning tree.
  for (unsigned seed = 0; seed < 6; ++seed) {
    gen::Rng rng(seed + 300);
    Graph g = gen::random_connected(6, 3, rng);
    gen::randomize_weights(g, 1, 9, rng);
    const auto result =
        seq::minimize(g, lib::spanning_connected(), "F", Sort::EdgeSet);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->weight, exact::min_weight_spanning_tree(g))
        << "seed=" << seed;
    std::vector<EdgeId> chosen;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (result->edges[e]) chosen.push_back(e);
    EXPECT_TRUE(is_spanning_tree(g, chosen));
  }
}

TEST(Courcelle, MaximizeMatching) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    gen::Rng rng(seed + 400);
    const Graph g = gen::random_connected(7, 3, rng);
    const auto result = seq::maximize(g, lib::matching(), "F", Sort::EdgeSet);
    ASSERT_TRUE(result.has_value());
    // Check against brute force over all edge subsets.
    Weight best = 0;
    for (std::uint64_t m = 0; m < (1ull << g.num_edges()); ++m) {
      if (!mso::evaluate(g, *lib::matching(), {{"F", mso::Value::edge_set(m)}}))
        continue;
      best = std::max<Weight>(best, std::popcount(m));
    }
    EXPECT_EQ(result->weight, best) << "seed=" << seed;
  }
}

TEST(Courcelle, MaximizeReturnsNulloptWhenUnsatisfiable) {
  // "S is nonempty and independent" on K2 with forced adjacency... simplest:
  // a formula that is never satisfiable: sing(S) & empty(S).
  const auto f = mso::land(mso::singleton("S"), mso::empty_set("S"));
  EXPECT_FALSE(
      seq::maximize(gen::path(3), f, "S", Sort::VertexSet).has_value());
}

TEST(Courcelle, CountIndependentSets) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    const Graph g = small_random(seed + 500, 7, 3);
    const auto count = seq::count(g, lib::independent_set_indicator(),
                                  {{"S", Sort::VertexSet}});
    EXPECT_EQ(count, exact::count_independent_sets(g)) << "seed=" << seed;
  }
}

TEST(Courcelle, CountTriangles) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    gen::Rng rng(seed + 600);
    const Graph g = gen::random_bounded_treedepth(8, 3, 0.6, rng);
    const auto count = seq::count(g, lib::triangle_tuple(),
                                  {{"X", Sort::VertexSet},
                                   {"Y", Sort::VertexSet},
                                   {"Z", Sort::VertexSet}});
    EXPECT_EQ(count, 6 * exact::count_triangles(g)) << "seed=" << seed;
  }
}

TEST(Courcelle, CountPerfectMatchings) {
  for (unsigned seed = 0; seed < 6; ++seed) {
    gen::Rng rng(seed + 700);
    const Graph g = gen::random_connected(6, 3, rng);
    const auto count =
        seq::count(g, lib::perfect_matching(), {{"F", Sort::EdgeSet}});
    EXPECT_EQ(count, exact::count_perfect_matchings(g)) << "seed=" << seed;
  }
}

TEST(Courcelle, WorksOnPathsOfGrowingLength) {
  // Larger instances than brute force could handle: known truths. Formula
  // rank bounds the feasible width (the meta-theorem's constant is
  // non-elementary), so higher-rank formulas get shorter paths.
  EXPECT_TRUE(seq::decide(gen::path(64), lib::connected()));
  EXPECT_TRUE(seq::decide(gen::cycle(64), lib::connected()));
  EXPECT_TRUE(seq::decide(gen::path(10), lib::k_colorable(2)));
  EXPECT_TRUE(seq::decide(gen::path(8), lib::acyclic()));
  EXPECT_FALSE(seq::decide(gen::cycle(9), lib::k_colorable(2)));
  const auto mis =
      seq::maximize(gen::path(41), lib::independent_set(), "S", Sort::VertexSet);
  ASSERT_TRUE(mis.has_value());
  EXPECT_EQ(mis->weight, 21);  // ceil(41/2)
}

TEST(Courcelle, RedBlueDomination) {
  // Section 6 example: blue set dominating all red vertices.
  Graph g = gen::star(4);  // center 0, leaves 1..4
  for (VertexId v = 1; v <= 4; ++v) g.set_vertex_label("red", v);
  g.set_vertex_label("blue", 0);
  const auto result =
      seq::minimize(g, lib::red_blue_dominating_set(), "S", Sort::VertexSet);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->weight, 1);  // the blue center dominates all reds
  EXPECT_TRUE(result->vertices[0]);
}

TEST(Courcelle, FeedbackVertexSet) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    gen::Rng rng(seed + 800);
    const Graph g = gen::random_connected(6, 2, rng);
    const auto result =
        seq::minimize(g, lib::feedback_vertex_set(), "S", Sort::VertexSet);
    ASSERT_TRUE(result.has_value());
    // brute-force the minimum FVS size
    Weight best = g.num_vertices();
    for (std::uint64_t m = 0; m < (1ull << g.num_vertices()); ++m) {
      if (!mso::evaluate(g, *lib::feedback_vertex_set(),
                         {{"S", mso::Value::vertex_set(m)}}))
        continue;
      best = std::min<Weight>(best, std::popcount(m));
    }
    EXPECT_EQ(result->weight, best) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dmc
