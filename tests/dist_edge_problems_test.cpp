// Distributed edge-set problems and corner cases: mixed-sign weights,
// single-vertex networks, edge-dominating sets, matching counting.
#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/optimization.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"

namespace dmc::dist {
namespace {

using mso::Sort;
namespace lib = mso::lib;

TEST(DistEdgeProblems, SingleVertexNetwork) {
  congest::Network net(Graph(1));
  const auto out = run_decision(net, lib::connected(), 1);
  ASSERT_FALSE(out.treedepth_exceeded);
  EXPECT_TRUE(out.holds);
}

TEST(DistEdgeProblems, TwoVertexNetwork) {
  congest::Network net(gen::path(2));
  const auto out = run_decision(net, lib::triangle_free(), 2);
  ASSERT_FALSE(out.treedepth_exceeded);
  EXPECT_TRUE(out.holds);
}

TEST(DistEdgeProblems, MixedSignWeightsMaxIs) {
  // Negative vertex weights: the optimal independent set may exclude
  // heavy-negative vertices; the empty set is always feasible.
  gen::Rng rng(3);
  Graph g = gen::random_bounded_treedepth(8, 3, 0.4, rng);
  gen::randomize_weights(g, -4, 4, rng);
  congest::Network net(g);
  const auto out =
      run_maximize(net, lib::independent_set(), "S", Sort::VertexSet, 3);
  ASSERT_FALSE(out.treedepth_exceeded);
  ASSERT_TRUE(out.best_weight.has_value());
  EXPECT_EQ(*out.best_weight, exact::max_weight_independent_set(g));
  EXPECT_GE(*out.best_weight, 0);  // empty set is feasible
  // marked set must not include negative-contribution-only choices wrongly
  Weight check = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (out.vertices[v]) check += g.vertex_weight(v);
  EXPECT_EQ(check, *out.best_weight);
}

TEST(DistEdgeProblems, MinEdgeDominatingSet) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    gen::Rng rng(seed + 30);
    const Graph g = gen::random_bounded_treedepth(7, 3, 0.4, rng);
    if (g.num_edges() == 0 || g.num_edges() > 16) continue;
    congest::Network net(g);
    const auto out =
        run_minimize(net, lib::edge_dominating_set(), "F", Sort::EdgeSet, 3);
    ASSERT_FALSE(out.treedepth_exceeded);
    ASSERT_TRUE(out.best_weight.has_value());
    // brute force
    Weight best = -1;
    for (std::uint64_t m = 0; m < (1ull << g.num_edges()); ++m) {
      if (!mso::evaluate(g, *lib::edge_dominating_set(),
                         {{"F", mso::Value::edge_set(m)}}))
        continue;
      const Weight w = std::popcount(m);
      if (best < 0 || w < best) best = w;
    }
    EXPECT_EQ(*out.best_weight, best) << "seed=" << seed;
  }
}

TEST(DistEdgeProblems, CountPerfectMatchingsDistributed) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    gen::Rng rng(seed + 40);
    const Graph g = gen::random_bounded_treedepth(6, 3, 0.5, rng);
    congest::Network net(g);
    const auto out =
        run_count(net, lib::perfect_matching(), {{"F", Sort::EdgeSet}}, 3);
    ASSERT_FALSE(out.treedepth_exceeded);
    EXPECT_EQ(out.count, exact::count_perfect_matchings(g)) << "seed=" << seed;
  }
}

TEST(DistEdgeProblems, MaxMatchingDistributed) {
  gen::Rng rng(50);
  const Graph g = gen::random_bounded_treedepth(7, 3, 0.4, rng);
  congest::Network net(g);
  const auto out = run_maximize(net, lib::matching(), "F", Sort::EdgeSet, 3);
  ASSERT_FALSE(out.treedepth_exceeded);
  ASSERT_TRUE(out.best_weight.has_value());
  Weight best = 0;
  for (std::uint64_t m = 0; m < (1ull << g.num_edges()); ++m) {
    if (!mso::evaluate(g, *lib::matching(), {{"F", mso::Value::edge_set(m)}}))
      continue;
    best = std::max<Weight>(best, std::popcount(m));
  }
  EXPECT_EQ(*out.best_weight, best);
  // Returned edges form a matching of that size.
  int chosen = 0;
  std::vector<int> touched(g.num_vertices(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (out.edges[e]) {
      ++chosen;
      ++touched[g.edge(e).u];
      ++touched[g.edge(e).v];
    }
  EXPECT_EQ(chosen, best);
  for (int t : touched) EXPECT_LE(t, 1);
}

}  // namespace
}  // namespace dmc::dist
