// Distributed elimination-tree construction (Algorithm 2 / Lemma 5.1).
#include "dist/elim_tree.hpp"

#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "td/elimination_forest.hpp"

namespace dmc::dist {
namespace {

/// Builds the EliminationForest over graph vertices from the result.
EliminationForest to_forest(const ElimTreeResult& r) {
  return EliminationForest(r.parent);
}

TEST(DistElimTree, SingleVertex) {
  congest::Network net(Graph(1));
  const auto result = run_elim_tree(net, 1);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.depth[0], 1);
  EXPECT_EQ(result.parent[0], -1);
}

TEST(DistElimTree, StarGraph) {
  congest::Network net(gen::star(5));
  const auto result = run_elim_tree(net, 2);
  ASSERT_TRUE(result.success);
  const auto forest = to_forest(result);
  EXPECT_TRUE(forest.valid_for(net.graph()));
  EXPECT_TRUE(forest.is_subgraph_of(net.graph()));
  EXPECT_LT(forest.depth(), 1 << 2);  // Lemma 2.5
}

TEST(DistElimTree, ReportsWhenBudgetTooSmall) {
  // P15 has treedepth 4 > 2.
  congest::Network net(gen::path(15));
  const auto result = run_elim_tree(net, 2);
  EXPECT_FALSE(result.success);
}

TEST(DistElimTree, PathWithinGenerousBudget) {
  // P7: treedepth 3; depth bound 2^3 = 8 >= 7 so construction succeeds.
  congest::Network net(gen::path(7));
  const auto result = run_elim_tree(net, 3);
  ASSERT_TRUE(result.success);
  const auto forest = to_forest(result);
  EXPECT_TRUE(forest.valid_for(net.graph()));
  EXPECT_TRUE(forest.is_subgraph_of(net.graph()));
  EXPECT_LT(forest.depth(), 1 << 3);
}

TEST(DistElimTree, MatchesSequentialMirrorOnIdentityIds) {
  // With identity ids the distributed run and the sequential greedy mirror
  // make identical choices.
  gen::Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::random_bounded_treedepth(10, 3, 0.4, rng);
    congest::Network net(g);
    const auto result = run_elim_tree(net, 3);
    ASSERT_TRUE(result.success);
    const auto seq = greedy_elimination_tree(g, (1 << 3) - 1);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(result.parent, seq->parents()) << "trial " << trial;
  }
}

TEST(DistElimTree, PropertyValidForestWithinDepthBound) {
  gen::Rng rng(11);
  for (int d = 2; d <= 3; ++d) {
    for (int trial = 0; trial < 6; ++trial) {
      const Graph g = gen::random_bounded_treedepth(12, d, 0.5, rng);
      congest::Network net(g, {.id_seed = static_cast<unsigned>(trial + 1)});
      const auto result = run_elim_tree(net, d);
      ASSERT_TRUE(result.success) << "d=" << d << " trial=" << trial;
      const auto forest = to_forest(result);
      EXPECT_TRUE(forest.valid_for(g));
      EXPECT_TRUE(forest.is_subgraph_of(g));
      EXPECT_LT(forest.depth(), 1 << d);
      // children lists consistent with parents
      for (int v = 0; v < g.num_vertices(); ++v)
        for (int c : result.children[v]) EXPECT_EQ(result.parent[c], v);
    }
  }
}

TEST(DistElimTree, RoundsIndependentOfN) {
  // Lemma 5.1: rounds depend only on d. Stars have treedepth 2.
  long rounds_small = 0, rounds_large = 0;
  {
    congest::Network net(gen::star(8));
    rounds_small = run_elim_tree(net, 2).rounds;
  }
  {
    congest::Network net(gen::star(64));
    rounds_large = run_elim_tree(net, 2).rounds;
  }
  EXPECT_EQ(rounds_small, rounds_large);
}

TEST(DistElimTree, RoundsGrowWithD) {
  const Graph g = gen::star(10);
  long prev = 0;
  for (int d = 2; d <= 5; ++d) {
    congest::Network net(g);
    const long rounds = run_elim_tree(net, d).rounds;
    EXPECT_GT(rounds, prev);
    prev = rounds;
  }
}

TEST(DistElimTree, RejectsBadBudget) {
  congest::Network net(gen::path(3));
  EXPECT_THROW(run_elim_tree(net, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dmc::dist
