// Low-treedepth decomposition + H-freeness pipeline (Theorem 7.2 interface,
// Corollary 7.3).
#include "dist/hfreeness.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "td/elimination_forest.hpp"

namespace dmc::dist {
namespace {

TEST(LowTdDecomposition, PartsAndShape) {
  const Graph g = gen::grid(6, 6);
  const auto d = grid_low_td_decomposition(g, 6, 6, 3);
  EXPECT_EQ(d.num_parts, 16);
  for (int part : d.part) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 16);
  }
}

TEST(LowTdDecomposition, UnionsOfPPartsHaveBoundedTreedepth) {
  // The decomposition guarantee (Theorem 7.2 analogue): every union of at
  // most p parts induces a subgraph of treedepth <= p^2. Verified exactly
  // per connected component.
  const int p = 3;
  gen::Rng rng(1);
  const Graph g = gen::perturbed_grid(7, 7, 8, rng);
  const auto d = grid_low_td_decomposition(g, 7, 7, p);
  // Sample p-subsets (exhaustive is large; fixed representative sample).
  const std::vector<std::vector<int>> subsets = {
      {0, 1, 2}, {0, 4, 8}, {5, 10, 15}, {3, 7, 11}, {2, 9, 14}, {1, 6, 12}};
  for (const auto& subset : subsets) {
    std::vector<bool> chosen(d.num_parts, false);
    for (int i : subset) chosen[i] = true;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (chosen[d.part[v]]) members.push_back(v);
    if (members.empty()) continue;
    const Graph gi = g.induced_subgraph(members);
    // per-component exact treedepth (components are small by construction)
    const auto comp = connected_components(gi);
    const int num_comp =
        comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
    for (int c = 0; c < num_comp; ++c) {
      std::vector<VertexId> cm;
      for (VertexId v = 0; v < gi.num_vertices(); ++v)
        if (comp[v] == c) cm.push_back(v);
      ASSERT_LE(cm.size(), static_cast<std::size_t>(p * p));
      EXPECT_LE(exact_treedepth(gi.induced_subgraph(cm)), p * p);
    }
  }
}

TEST(LowTdDecomposition, RejectsBadInput) {
  EXPECT_THROW(grid_low_td_decomposition(gen::grid(3, 3), 2, 3, 3),
               std::invalid_argument);
  Graph long_edge = gen::path(3);  // laid out as a 1x3 grid
  long_edge.add_edge(0, 2);        // spans two cells
  EXPECT_THROW(grid_low_td_decomposition(long_edge, 1, 3, 2),
               std::invalid_argument);
}

TEST(HFreeness, TriangleDetectionOnGrids) {
  const Graph triangle = gen::clique(3);
  {
    // Pure grid: triangle-free.
    const auto out =
        run_h_freeness_grid(gen::grid(5, 5), 5, 5, triangle, /*td=*/4);
    EXPECT_TRUE(out.h_free);
    EXPECT_GT(out.num_subsets, 0);
  }
  {
    // Perturbed grid with diagonals: contains triangles.
    gen::Rng rng(3);
    const Graph g = gen::perturbed_grid(5, 5, 10, rng);
    ASSERT_TRUE(exact::contains_subgraph(g, triangle));
    const auto out = run_h_freeness_grid(g, 5, 5, triangle, 4);
    EXPECT_FALSE(out.h_free);
  }
}

TEST(HFreeness, MatchesOracleOnPerturbedGrids) {
  const Graph triangle = gen::clique(3);
  for (unsigned seed = 1; seed <= 4; ++seed) {
    gen::Rng rng(seed);
    const Graph g = gen::perturbed_grid(4, 5, static_cast<int>(seed), rng);
    const auto out = run_h_freeness_grid(g, 4, 5, triangle, 4);
    EXPECT_EQ(out.h_free, !exact::contains_subgraph(g, triangle))
        << "seed=" << seed;
  }
}

TEST(HFreeness, PathOfLength3Detection) {
  // P3 (2 edges) exists in any grid with >= 3 vertices in a line.
  const auto out =
      run_h_freeness_grid(gen::grid(4, 4), 4, 4, gen::path(3), 4);
  EXPECT_FALSE(out.h_free);
}

TEST(HFreeness, RoundsScaleReport) {
  // The per-run rounds are bounded by the treedepth budget, not n.
  const Graph triangle = gen::clique(3);
  const auto small = run_h_freeness_grid(gen::grid(4, 4), 4, 4, triangle, 4);
  const auto large = run_h_freeness_grid(gen::grid(8, 8), 8, 8, triangle, 4);
  EXPECT_LE(large.max_run_rounds, 2 * std::max(small.max_run_rounds, 1L));
  EXPECT_EQ(small.num_subsets, large.num_subsets);
}

}  // namespace
}  // namespace dmc::dist
