// End-to-end distributed protocol tests (Theorem 6.1 and Section 6):
// decision, optimization, counting, optmarked, bags, baseline — all checked
// against the sequential reference / exact oracles.
#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "dist/bags.hpp"
#include "dist/baseline.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "graph/algorithms.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"
#include "td/elimination_forest.hpp"

namespace dmc::dist {
namespace {

using mso::Sort;
namespace lib = mso::lib;

Graph btd_graph(unsigned seed, int n = 10, int d = 3, double p = 0.4) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, p, rng);
}

// --- bags (Lemma 5.3) ---------------------------------------------------------

TEST(DistBags, BagsMatchCanonicalDecomposition) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    const Graph g = btd_graph(seed);
    congest::Network net(g, {.id_seed = seed});
    const auto tree = run_elim_tree(net, 3);
    ASSERT_TRUE(tree.success);
    const auto bags = run_bags(net, tree, {}, {});
    const EliminationForest forest(tree.parent);
    for (int v = 0; v < g.num_vertices(); ++v) {
      // Expected bag: ids of the root path of v.
      std::vector<VertexId> expected;
      for (VertexId u : forest.root_path(v))
        expected.push_back(net.id_of_vertex(u));
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(bags.bags[v].bag, expected) << "v=" << v;
      // Edges of G[B_v] present.
      int expected_edges = 0;
      for (std::size_t i = 0; i < expected.size(); ++i)
        for (std::size_t j = i + 1; j < expected.size(); ++j)
          if (g.has_edge(net.vertex_of_id(expected[i]),
                         net.vertex_of_id(expected[j])))
            ++expected_edges;
      EXPECT_EQ(static_cast<int>(bags.bags[v].edges.size()), expected_edges);
    }
  }
}

TEST(DistBags, CarriesWeightsAndLabels) {
  Graph g = gen::path(4);
  g.set_vertex_weight(0, 7);
  g.set_vertex_label("red", 0);
  g.set_edge_weight(g.edge_id(0, 1), 5);
  g.set_edge_label("mark", g.edge_id(0, 1));
  congest::Network net(g);
  const auto tree = run_elim_tree(net, 3);
  ASSERT_TRUE(tree.success);
  const auto bags = run_bags(net, tree, {"red"}, {"mark"});
  // Deepest node's bag contains everything on its root path; find a vertex
  // whose bag contains vertex 0 and check the attributes survived.
  bool checked_vertex = false, checked_edge = false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const auto& b = bags.bags[v];
    for (std::size_t i = 0; i < b.bag.size(); ++i) {
      if (net.vertex_of_id(b.bag[i]) == 0) {
        EXPECT_EQ(b.weights[i], 7);
        EXPECT_EQ(b.vlabel_bits[i], 1u);
        checked_vertex = true;
      }
    }
    for (const auto& e : b.edges) {
      const int a = net.vertex_of_id(b.bag[e.i]);
      const int bb = net.vertex_of_id(b.bag[e.j]);
      if ((a == 0 && bb == 1) || (a == 1 && bb == 0)) {
        EXPECT_EQ(e.weight, 5);
        EXPECT_EQ(e.elabel_bits, 1u);
        checked_edge = true;
      }
    }
  }
  EXPECT_TRUE(checked_vertex);
  EXPECT_TRUE(checked_edge);
}

// --- decision (Theorem 6.1) ----------------------------------------------------

class DistDecision
    : public ::testing::TestWithParam<std::pair<const char*, mso::FormulaPtr>> {
};

TEST_P(DistDecision, AgreesWithBruteForce) {
  const auto& [name, formula] = GetParam();
  for (unsigned seed = 0; seed < 6; ++seed) {
    const Graph g = btd_graph(seed, 9, 3, 0.35);
    congest::Network net(g, {.id_seed = seed * 13 + 1});
    const auto outcome = run_decision(net, formula, 3);
    ASSERT_FALSE(outcome.treedepth_exceeded) << name << " seed=" << seed;
    EXPECT_EQ(outcome.holds, mso::evaluate(g, *formula))
        << name << " seed=" << seed << " " << g.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    FormulaLibrary, DistDecision,
    ::testing::Values(
        std::make_pair("triangle_free", lib::triangle_free()),
        std::make_pair("connected", lib::connected()),
        std::make_pair("two_colorable", lib::k_colorable(2)),
        std::make_pair("isolated_lowrank", lib::has_isolated_vertex_lowrank())),
    [](const auto& info) { return info.param.first; });

TEST(DistDecisionSuite, AcyclicOnSmallGraphs) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    const Graph g = btd_graph(seed + 50, 6, 2, 0.5);
    congest::Network net(g);
    const auto outcome = run_decision(net, lib::acyclic(), 2);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    EXPECT_EQ(outcome.holds, mso::evaluate(g, *lib::acyclic()));
  }
}

TEST(DistDecisionSuite, LabeledColoring) {
  Graph g = gen::star(4);
  g.set_vertex_label("red", 0);
  for (int v = 1; v <= 4; ++v) g.set_vertex_label("blue", v);
  congest::Network net(g);
  const auto ok = run_decision(net, lib::properly_2_colored(), 2);
  ASSERT_FALSE(ok.treedepth_exceeded);
  EXPECT_TRUE(ok.holds);

  g.set_vertex_label("blue", 1, false);
  g.set_vertex_label("red", 1);
  congest::Network net2(g);
  const auto bad = run_decision(net2, lib::properly_2_colored(), 2);
  EXPECT_FALSE(bad.holds);
}

TEST(DistDecisionSuite, TreedepthBudgetRespected) {
  congest::Network net(gen::path(15));  // td 4
  const auto outcome = run_decision(net, lib::connected(), 2);
  EXPECT_TRUE(outcome.treedepth_exceeded);
}

TEST(DistDecisionSuite, RoundsIndependentOfNOnStars) {
  // Theorem 6.1: rounds depend on d and phi only.
  long rounds_small = 0, rounds_large = 0;
  {
    congest::Network net(gen::star(8));
    rounds_small = run_decision(net, lib::connected(), 2).total_rounds();
  }
  {
    congest::Network net(gen::star(80));
    rounds_large = run_decision(net, lib::connected(), 2).total_rounds();
  }
  // Bags payloads depend on bag size (= depth <= 4), not on n; identical
  // structure => identical rounds.
  EXPECT_EQ(rounds_small, rounds_large);
}

TEST(DistDecisionSuite, ClassMessagesAreSmall) {
  const Graph g = btd_graph(3, 12, 3, 0.4);
  congest::Network net(g);
  const auto outcome = run_decision(net, lib::connected(), 3);
  ASSERT_FALSE(outcome.treedepth_exceeded);
  EXPECT_GT(outcome.num_classes, 0u);
  EXPECT_LE(outcome.max_class_bits, 32);
}

// --- optimization ---------------------------------------------------------------

TEST(DistOptimization, MaxIndependentSetMatchesOracle) {
  for (unsigned seed = 0; seed < 5; ++seed) {
    gen::Rng rng(seed);
    Graph g = gen::random_bounded_treedepth(9, 3, 0.4, rng);
    gen::randomize_weights(g, 1, 5, rng);
    congest::Network net(g, {.id_seed = seed + 1});
    const auto outcome =
        run_maximize(net, lib::independent_set(), "S", Sort::VertexSet, 3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    ASSERT_TRUE(outcome.best_weight.has_value());
    EXPECT_EQ(*outcome.best_weight, exact::max_weight_independent_set(g))
        << "seed=" << seed;
    // Reconstructed set is independent with the claimed weight.
    Weight w = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (outcome.vertices[v]) w += g.vertex_weight(v);
    EXPECT_EQ(w, *outcome.best_weight);
    for (const Edge& e : g.edges())
      EXPECT_FALSE(outcome.vertices[e.u] && outcome.vertices[e.v]);
  }
}

TEST(DistOptimization, MinDominatingSetMatchesOracle) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    const Graph g = btd_graph(seed + 20, 8, 3, 0.35);
    congest::Network net(g);
    const auto outcome =
        run_minimize(net, lib::dominating_set(), "S", Sort::VertexSet, 3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    ASSERT_TRUE(outcome.best_weight.has_value());
    EXPECT_EQ(*outcome.best_weight, exact::min_weight_dominating_set(g));
    // Marked set dominates.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      bool dominated = outcome.vertices[v];
      for (auto [w, e] : g.incident(v)) dominated |= outcome.vertices[w];
      EXPECT_TRUE(dominated) << "v=" << v;
    }
  }
}

TEST(DistOptimization, DistributedMstMatchesKruskal) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    gen::Rng rng(seed + 40);
    Graph g = gen::random_bounded_treedepth(7, 3, 0.5, rng);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      g.set_edge_weight(e, 1 + static_cast<Weight>((seed * 7 + e * 13) % 9));
    congest::Network net(g);
    const auto outcome =
        run_minimize(net, lib::spanning_connected(), "F", Sort::EdgeSet, 3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    ASSERT_TRUE(outcome.best_weight.has_value());
    EXPECT_EQ(*outcome.best_weight, exact::min_weight_spanning_tree(g));
    std::vector<EdgeId> chosen;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (outcome.edges[e]) chosen.push_back(e);
    EXPECT_TRUE(is_spanning_tree(g, chosen)) << "seed=" << seed;
  }
}

TEST(DistOptimization, InfeasibleFormulaReportsNoSolution) {
  const Graph g = gen::path(4);
  congest::Network net(g);
  const auto f = mso::land(mso::singleton("S"), mso::empty_set("S"));
  const auto outcome = run_maximize(net, f, "S", Sort::VertexSet, 3);
  ASSERT_FALSE(outcome.treedepth_exceeded);
  EXPECT_FALSE(outcome.best_weight.has_value());
}

// --- counting -------------------------------------------------------------------

TEST(DistCounting, IndependentSetsMatchOracle) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    const Graph g = btd_graph(seed + 60, 8, 3, 0.4);
    congest::Network net(g, {.id_seed = seed + 5});
    const auto outcome = run_count(net, lib::independent_set_indicator(),
                                   {{"S", Sort::VertexSet}}, 3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    EXPECT_EQ(outcome.count, exact::count_independent_sets(g));
  }
}

TEST(DistCounting, TrianglesMatchOracle) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    const Graph g = btd_graph(seed + 70, 8, 3, 0.6);
    congest::Network net(g);
    const auto outcome = run_count(net, lib::triangle_tuple(),
                                   {{"X", Sort::VertexSet},
                                    {"Y", Sort::VertexSet},
                                    {"Z", Sort::VertexSet}},
                                   3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    EXPECT_EQ(outcome.count, 6 * exact::count_triangles(g)) << "seed=" << seed;
  }
}

// --- optmarked (Section 6) -------------------------------------------------------

TEST(DistOptMarked, AcceptsOptimalIndependentSetRejectsOthers) {
  const Graph base = btd_graph(80, 8, 3, 0.4);
  // Compute an optimal independent set sequentially and mark it.
  const auto opt =
      seq::maximize(base, lib::independent_set(), "S", Sort::VertexSet);
  ASSERT_TRUE(opt.has_value());
  {
    Graph g = base;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (opt->vertices[v]) g.set_vertex_label("marked", v);
    congest::Network net(g);
    const auto outcome =
        run_optmarked(net, lib::independent_set(), "S", Sort::VertexSet, 3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    EXPECT_TRUE(outcome.satisfies);
    EXPECT_TRUE(outcome.is_optimal);
    EXPECT_EQ(outcome.marked_weight, opt->weight);
  }
  {
    // Empty marked set: satisfies (independent) but not optimal.
    congest::Network net(base);
    const auto outcome =
        run_optmarked(net, lib::independent_set(), "S", Sort::VertexSet, 3);
    EXPECT_TRUE(outcome.satisfies);
    EXPECT_FALSE(outcome.is_optimal);
  }
  {
    // Mark two adjacent vertices: not even independent.
    Graph g = base;
    ASSERT_GT(g.num_edges(), 0);
    g.set_vertex_label("marked", g.edge(0).u);
    g.set_vertex_label("marked", g.edge(0).v);
    congest::Network net(g);
    const auto outcome =
        run_optmarked(net, lib::independent_set(), "S", Sort::VertexSet, 3);
    EXPECT_FALSE(outcome.satisfies);
    EXPECT_FALSE(outcome.is_optimal);
  }
}

TEST(DistOptMarked, VerifiesMarkedMst) {
  gen::Rng rng(90);
  Graph g = gen::random_bounded_treedepth(7, 3, 0.5, rng);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    g.set_edge_weight(e, 1 + static_cast<Weight>((e * 17) % 7));
  const auto mst = kruskal_mst(g);
  for (EdgeId e : mst) g.set_edge_label("marked", e);
  congest::Network net(g);
  const auto outcome = run_optmarked(net, lib::spanning_connected(), "F",
                                     Sort::EdgeSet, 3, /*minimize=*/true);
  ASSERT_FALSE(outcome.treedepth_exceeded);
  EXPECT_TRUE(outcome.satisfies);
  EXPECT_TRUE(outcome.is_optimal);
  EXPECT_EQ(outcome.marked_weight, total_edge_weight(g, mst));
}

// --- baseline --------------------------------------------------------------------

TEST(DistBaseline, AgreesWithSequential) {
  for (unsigned seed = 0; seed < 4; ++seed) {
    const Graph g = btd_graph(seed + 100, 9, 3, 0.4);
    congest::Network net(g, {.id_seed = seed + 2});
    const auto outcome = run_gather_baseline(net, lib::triangle_free());
    EXPECT_EQ(outcome.holds, mso::evaluate(g, *lib::triangle_free()));
  }
}

TEST(DistBaseline, RoundsGrowWithN) {
  long small = 0, large = 0;
  {
    congest::Network net(gen::star(8));
    small = run_gather_baseline(net, lib::connected()).rounds;
  }
  {
    congest::Network net(gen::star(64));
    large = run_gather_baseline(net, lib::connected()).rounds;
  }
  EXPECT_GT(large, 2 * small);
}

}  // namespace
}  // namespace dmc::dist
