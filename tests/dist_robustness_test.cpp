// Robustness sweeps for the distributed stack: adversarial id assignments,
// tight bandwidth (forcing fragmentation everywhere), and cross-checks of
// all three table protocols under the same conditions.
#include <gtest/gtest.h>

#include "bpt/engine.hpp"
#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/optimization.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"

namespace dmc::dist {
namespace {

using mso::Sort;
namespace lib = mso::lib;

TEST(DistRobustness, DecisionStableUnderIdPermutations) {
  gen::Rng rng(7);
  const Graph g = gen::random_bounded_treedepth(10, 3, 0.4, rng);
  const bool truth = mso::evaluate(g, *lib::triangle_free());
  for (unsigned seed = 1; seed <= 8; ++seed) {
    congest::Network net(g, {.id_seed = seed});
    const auto out = run_decision(net, lib::triangle_free(), 3);
    ASSERT_FALSE(out.treedepth_exceeded) << "seed=" << seed;
    EXPECT_EQ(out.holds, truth) << "seed=" << seed;
  }
}

TEST(DistRobustness, OptimizationStableUnderIdPermutations) {
  gen::Rng rng(8);
  Graph g = gen::random_bounded_treedepth(9, 3, 0.4, rng);
  gen::randomize_weights(g, 1, 7, rng);
  const Weight truth = exact::max_weight_independent_set(g);
  for (unsigned seed = 1; seed <= 6; ++seed) {
    congest::Network net(g, {.id_seed = seed});
    const auto out =
        run_maximize(net, lib::independent_set(), "S", Sort::VertexSet, 3);
    ASSERT_FALSE(out.treedepth_exceeded);
    ASSERT_TRUE(out.best_weight.has_value()) << "seed=" << seed;
    EXPECT_EQ(*out.best_weight, truth) << "seed=" << seed;
  }
}

TEST(DistRobustness, TightBandwidthOnlyCostsRounds) {
  gen::Rng rng(9);
  const Graph g = gen::random_bounded_treedepth(10, 3, 0.4, rng);
  const bool truth = mso::evaluate(g, *lib::k_colorable(2));
  long roomy_rounds = 0, tight_rounds = 0;
  {
    congest::Network net(g, {.bandwidth_multiplier = 8, .min_bandwidth = 64});
    const auto out = run_decision(net, lib::k_colorable(2), 3);
    ASSERT_FALSE(out.treedepth_exceeded);
    EXPECT_EQ(out.holds, truth);
    roomy_rounds = out.total_rounds();
  }
  {
    congest::Network net(g, {.bandwidth_multiplier = 1, .min_bandwidth = 16});
    const auto out = run_decision(net, lib::k_colorable(2), 3);
    ASSERT_FALSE(out.treedepth_exceeded);
    EXPECT_EQ(out.holds, truth);
    tight_rounds = out.total_rounds();
  }
  EXPECT_GE(tight_rounds, roomy_rounds);  // fragmentation only adds rounds
}

TEST(DistRobustness, CountingStableUnderTightBandwidth) {
  gen::Rng rng(10);
  const Graph g = gen::random_bounded_treedepth(9, 3, 0.5, rng);
  const std::uint64_t truth = exact::count_triangles(g);
  congest::Network net(g, {.bandwidth_multiplier = 1, .min_bandwidth = 16,
                           .id_seed = 5});
  const auto out = run_count(net, lib::triangle_tuple(),
                             {{"X", Sort::VertexSet},
                              {"Y", Sort::VertexSet},
                              {"Z", Sort::VertexSet}},
                             3);
  ASSERT_FALSE(out.treedepth_exceeded);
  EXPECT_EQ(out.count, 6 * truth);
}

TEST(DistRobustness, LargerBudgetsAreHarmlessButSlower) {
  // A bigger d only adds rounds, never changes verdicts.
  gen::Rng rng(11);
  const Graph g = gen::random_bounded_treedepth(8, 2, 0.5, rng);
  const bool truth = mso::evaluate(g, *lib::connected());
  long prev = 0;
  for (int d = 2; d <= 4; ++d) {
    congest::Network net(g);
    const auto out = run_decision(net, lib::connected(), d);
    ASSERT_FALSE(out.treedepth_exceeded) << "d=" << d;
    EXPECT_EQ(out.holds, truth);
    EXPECT_GT(out.total_rounds(), prev);
    prev = out.total_rounds();
  }
}

TEST(DistRobustness, AllProtocolsShareOneNetworkSequentially) {
  // Stats accumulate across protocol phases on the same network object.
  gen::Rng rng(12);
  const Graph g = gen::random_bounded_treedepth(8, 3, 0.4, rng);
  congest::Network net(g);
  const auto d1 = run_decision(net, lib::connected(), 3);
  const long after_first = net.stats().rounds;
  const auto d2 = run_decision(net, lib::has_isolated_vertex_lowrank(), 3);
  EXPECT_GT(net.stats().rounds, after_first);
  ASSERT_FALSE(d1.treedepth_exceeded);
  ASSERT_FALSE(d2.treedepth_exceeded);
  EXPECT_EQ(d1.holds, mso::evaluate(g, *lib::connected()));
  EXPECT_EQ(d2.holds, mso::evaluate(g, *lib::has_isolated_vertex_lowrank()));
}

TEST(DistRobustness, SharedEngineAcrossInstances) {
  // Theorem 4.2: the class universe is a function of (phi, w); reusing one
  // engine across many graphs must not change verdicts.
  const auto lowered = mso::lower(lib::triangle_free());
  bpt::Engine engine(bpt::config_for(*lowered));
  gen::Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = gen::random_bounded_treedepth(8, 3, 0.5, rng);
    congest::Network net(g);
    const auto out = run_decision(net, lib::triangle_free(), 3, &engine);
    ASSERT_FALSE(out.treedepth_exceeded);
    EXPECT_EQ(out.holds, mso::evaluate(g, *lib::triangle_free()));
  }
}

}  // namespace
}  // namespace dmc::dist
