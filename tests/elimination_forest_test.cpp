#include "td/elimination_forest.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace dmc {
namespace {

TEST(EliminationForest, DepthsAndChildren) {
  // 0 is root; 1,2 children of 0; 3 child of 2.
  EliminationForest f({-1, 0, 0, 2});
  EXPECT_EQ(f.depth(0), 1);
  EXPECT_EQ(f.depth(1), 2);
  EXPECT_EQ(f.depth(3), 3);
  EXPECT_EQ(f.depth(), 3);
  EXPECT_EQ(f.children(0).size(), 2u);
  EXPECT_EQ(f.roots(), std::vector<VertexId>{0});
  EXPECT_TRUE(f.is_ancestor(0, 3));
  EXPECT_TRUE(f.is_ancestor(2, 3));
  EXPECT_TRUE(f.is_ancestor(3, 3));
  EXPECT_FALSE(f.is_ancestor(1, 3));
  EXPECT_EQ(f.root_path(3), (std::vector<VertexId>{0, 2, 3}));
}

TEST(EliminationForest, RejectsCycles) {
  EXPECT_THROW(EliminationForest({1, 0}), std::invalid_argument);
  EXPECT_THROW(EliminationForest({0}), std::invalid_argument);
  EXPECT_THROW(EliminationForest({5}), std::invalid_argument);
}

TEST(EliminationForest, ValidFor) {
  // P4: 0-1-2-3. A path elimination tree 0>1>2>3 is valid.
  const Graph g = gen::path(4);
  EliminationForest chain({-1, 0, 1, 2});
  EXPECT_TRUE(chain.valid_for(g));
  EXPECT_TRUE(chain.is_subgraph_of(g));
  // Star forest rooted at 0 with all others children: edge 2-3 is not
  // ancestor-descendant.
  EliminationForest star({-1, 0, 0, 0});
  EXPECT_FALSE(star.valid_for(g));
}

TEST(ExactTreedepth, KnownValues) {
  EXPECT_EQ(exact_treedepth(Graph(1)), 1);
  EXPECT_EQ(exact_treedepth(gen::clique(4)), 4);
  EXPECT_EQ(exact_treedepth(gen::star(5)), 2);
  EXPECT_EQ(exact_treedepth(gen::cycle(4)), 3);
  // td(P_n) = ceil(log2(n+1)) (paper, Section 2)
  for (int n = 1; n <= 16; ++n) {
    const int expected = static_cast<int>(std::ceil(std::log2(n + 1)));
    EXPECT_EQ(exact_treedepth(gen::path(n)), expected) << "P_" << n;
  }
}

TEST(ExactTreedepth, DisconnectedTakesMax) {
  const Graph g = gen::disjoint_union(gen::clique(3), gen::path(2));
  EXPECT_EQ(exact_treedepth(g), 3);
}

TEST(ExactTreedepthForest, ForestIsValidAndOptimal) {
  gen::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::random_connected(9, 4, rng);
    const auto [td, forest] = exact_treedepth_forest(g);
    EXPECT_TRUE(forest.valid_for(g));
    EXPECT_EQ(forest.depth(), td);
  }
}

TEST(GreedyEliminationTree, ValidSubtreeWithinDepthBound) {
  gen::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::random_connected(12, 6, rng);
    const int td = exact_treedepth(g);
    const auto forest = greedy_elimination_tree(g, (1 << td) - 1);
    ASSERT_TRUE(forest.has_value()) << "td=" << td;
    EXPECT_TRUE(forest->valid_for(g));
    EXPECT_TRUE(forest->is_subgraph_of(g));
    // Lemma 2.5: depth < 2^td
    EXPECT_LT(forest->depth(), 1 << td);
  }
}

TEST(GreedyEliminationTree, ReportsWhenDepthBoundExceeded) {
  // P_15 has treedepth 4; an elimination tree that is a subtree of a path
  // rooted at an endpoint is the path itself (depth 15), so with the budget
  // for d=2 (max depth 3) the construction must give up.
  const auto forest = greedy_elimination_tree(gen::path(15), (1 << 2) - 1);
  EXPECT_FALSE(forest.has_value());
}

TEST(GreedyEliminationTree, HandlesSingleVertex) {
  const auto forest = greedy_elimination_tree(Graph(1), 1);
  ASSERT_TRUE(forest.has_value());
  EXPECT_EQ(forest->depth(), 1);
}

TEST(GreedyEliminationTree, RejectsDisconnected) {
  EXPECT_THROW(
      greedy_elimination_tree(gen::disjoint_union(gen::path(2), gen::path(2)), 10),
      std::invalid_argument);
}

}  // namespace
}  // namespace dmc
