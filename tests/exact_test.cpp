#include "graph/exact.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmc {
namespace {

TEST(Exact, ContainsSubgraph) {
  const Graph g = gen::cycle(5);
  EXPECT_TRUE(exact::contains_subgraph(g, gen::path(3)));
  EXPECT_FALSE(exact::contains_subgraph(g, gen::clique(3)));
  EXPECT_TRUE(exact::contains_subgraph(gen::clique(4), gen::cycle(4)));
  EXPECT_TRUE(exact::contains_subgraph(g, gen::cycle(5)));
  EXPECT_FALSE(exact::contains_subgraph(g, gen::cycle(4)));
}

TEST(Exact, ContainsInducedSubgraph) {
  const Graph k4 = gen::clique(4);
  EXPECT_FALSE(exact::contains_induced_subgraph(k4, gen::cycle(4)));
  EXPECT_TRUE(exact::contains_subgraph(k4, gen::cycle(4)));
  EXPECT_TRUE(exact::contains_induced_subgraph(gen::cycle(6), gen::path(4)));
}

TEST(Exact, CountTriangles) {
  EXPECT_EQ(exact::count_triangles(gen::clique(4)), 4u);
  EXPECT_EQ(exact::count_triangles(gen::clique(5)), 10u);
  EXPECT_EQ(exact::count_triangles(gen::cycle(5)), 0u);
  EXPECT_EQ(exact::count_triangles(gen::cycle(3)), 1u);
  EXPECT_EQ(exact::count_triangles(gen::grid(3, 3)), 0u);
}

TEST(Exact, MaxWeightIndependentSet) {
  EXPECT_EQ(exact::max_weight_independent_set(gen::path(5)), 3);
  EXPECT_EQ(exact::max_weight_independent_set(gen::cycle(5)), 2);
  EXPECT_EQ(exact::max_weight_independent_set(gen::clique(6)), 1);
  Graph g = gen::path(3);
  g.set_vertex_weight(1, 10);
  EXPECT_EQ(exact::max_weight_independent_set(g), 10);
  // all-negative weights: empty set wins
  Graph h = gen::path(2);
  h.set_vertex_weight(0, -1);
  h.set_vertex_weight(1, -2);
  EXPECT_EQ(exact::max_weight_independent_set(h), 0);
}

TEST(Exact, MinWeightVertexCover) {
  EXPECT_EQ(exact::min_weight_vertex_cover(gen::path(5)), 2);
  EXPECT_EQ(exact::min_weight_vertex_cover(gen::cycle(5)), 3);
  EXPECT_EQ(exact::min_weight_vertex_cover(gen::star(6)), 1);
  EXPECT_EQ(exact::min_weight_vertex_cover(gen::clique(5)), 4);
}

TEST(Exact, MinWeightDominatingSet) {
  EXPECT_EQ(exact::min_weight_dominating_set(gen::star(6)), 1);
  EXPECT_EQ(exact::min_weight_dominating_set(gen::path(7)), 3);
  EXPECT_EQ(exact::min_weight_dominating_set(gen::cycle(6)), 2);
}

TEST(Exact, Colorability) {
  EXPECT_TRUE(exact::is_k_colorable(gen::path(5), 2));
  EXPECT_FALSE(exact::is_k_colorable(gen::cycle(5), 2));
  EXPECT_TRUE(exact::is_k_colorable(gen::cycle(5), 3));
  EXPECT_FALSE(exact::is_k_colorable(gen::clique(4), 3));
  EXPECT_EQ(exact::chromatic_number(gen::cycle(5)), 3);
  EXPECT_EQ(exact::chromatic_number(gen::cycle(6)), 2);
  EXPECT_EQ(exact::chromatic_number(gen::clique(4)), 4);
  EXPECT_EQ(exact::chromatic_number(gen::grid(3, 3)), 2);
  EXPECT_EQ(exact::chromatic_number(Graph(0)), 0);
}

TEST(Exact, CountIndependentSets) {
  // path(2): {}, {0}, {1} -> 3
  EXPECT_EQ(exact::count_independent_sets(gen::path(2)), 3u);
  // path(3): {}, {0}, {1}, {2}, {0,2} -> 5 (Fibonacci)
  EXPECT_EQ(exact::count_independent_sets(gen::path(3)), 5u);
  EXPECT_EQ(exact::count_independent_sets(gen::path(4)), 8u);
  EXPECT_EQ(exact::count_independent_sets(gen::clique(4)), 5u);
}

TEST(Exact, CountPerfectMatchings) {
  EXPECT_EQ(exact::count_perfect_matchings(gen::path(4)), 1u);
  EXPECT_EQ(exact::count_perfect_matchings(gen::path(3)), 0u);
  EXPECT_EQ(exact::count_perfect_matchings(gen::cycle(6)), 2u);
  EXPECT_EQ(exact::count_perfect_matchings(gen::clique(4)), 3u);
  EXPECT_EQ(exact::count_perfect_matchings(gen::complete_bipartite(3, 3)), 6u);
}

TEST(Exact, MinWeightSpanningTree) {
  Graph g = gen::cycle(4);
  g.set_edge_weight(g.edge_id(0, 1), 5);
  EXPECT_EQ(exact::min_weight_spanning_tree(g), 3);
}

TEST(Exact, RejectsOversizedInputs) {
  EXPECT_THROW(exact::max_weight_independent_set(Graph(31)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmc
