// Fault-injection and reliable-transport tests (docs/ROBUSTNESS.md).
//
// The contract under test: with the reliable transport layered under them,
// every distributed protocol must return oracle-correct results under
// link faults (drop / duplicate / corrupt / reorder) — same verdicts as
// the fault-free run, at a higher physical-round cost — and crash-stop
// faults must surface as structured degraded outcomes (RunStatus), never
// as an uncaught exception or a silently wrong answer. Labelled `faults`
// in ctest so CI can run the sweep standalone (including under
// sanitizers: ctest -L faults).
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <optional>
#include <string>
#include <vector>

#include "congest/conformance.hpp"
#include "congest/faults.hpp"
#include "congest/fragment.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

using congest::FaultPlan;
using congest::NetworkConfig;
using congest::RunStatus;
using mso::Sort;

Graph btd_graph(unsigned seed, int n = 9, int d = 3, double p = 0.35) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, p, rng);
}

NetworkConfig faulty_cfg(const std::string& spec, unsigned id_seed = 1) {
  NetworkConfig cfg;
  cfg.id_seed = id_seed;
  cfg.faults = congest::parse_fault_plan(spec);
  return cfg;
}

// --- spec grammar -------------------------------------------------------------

TEST(FaultPlanParse, FullGrammar) {
  const FaultPlan plan = congest::parse_fault_plan(
      "drop=0.1,dup=0.05,corrupt=0.01,reorder=0.2,reorder_max=3,"
      "crash=3@r20,crash=5@r7,seed=42,transport=raw");
  EXPECT_DOUBLE_EQ(plan.drop, 0.1);
  EXPECT_DOUBLE_EQ(plan.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.2);
  EXPECT_EQ(plan.reorder_max, 3);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].node, 3);
  EXPECT_EQ(plan.crashes[0].round, 20);
  EXPECT_EQ(plan.crashes[1].node, 5);
  EXPECT_EQ(plan.crashes[1].round, 7);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.raw_transport);
  EXPECT_TRUE(plan.has_link_faults());
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanParse, FormatRoundTrips) {
  const char* spec = "drop=0.2,dup=0.1,crash=2@r15,seed=7";
  const FaultPlan a = congest::parse_fault_plan(spec);
  const FaultPlan b = congest::parse_fault_plan(congest::format_fault_plan(a));
  EXPECT_DOUBLE_EQ(a.drop, b.drop);
  EXPECT_DOUBLE_EQ(a.duplicate, b.duplicate);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_EQ(a.crashes[0].node, b.crashes[0].node);
  EXPECT_EQ(a.crashes[0].round, b.crashes[0].round);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_THROW(congest::parse_fault_plan("bogus=1"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("drop=abc"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("crash=3"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("crash=3@20"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("transport=tcp"),
               std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("reorder_max=0"),
               std::invalid_argument);
}

TEST(FaultPlanParse, RejectsDuplicateScalarKeys) {
  // Last-wins would silently mask typos; every scalar key is once-only.
  EXPECT_THROW(congest::parse_fault_plan("drop=0.1,drop=0.2"),
               std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("seed=1,drop=0.1,seed=2"),
               std::invalid_argument);
  // dup and duplicate are one logical key.
  EXPECT_THROW(congest::parse_fault_plan("dup=0.1,duplicate=0.2"),
               std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("reorder=0.1,reorder=0.1"),
               std::invalid_argument);
  // crash legitimately repeats: one entry per crash fault.
  const FaultPlan plan =
      congest::parse_fault_plan("crash=1@r3,crash=2@r5,seed=9");
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].node, 1);
  EXPECT_EQ(plan.crashes[1].round, 5);
}

TEST(FaultPlanParse, RejectsOutOfRangeScalars) {
  EXPECT_THROW(congest::parse_fault_plan("seed=-1"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("crash=-1@r3"),
               std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("crash=2@r-4"),
               std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("dup=1.01"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("corrupt=-0.5"),
               std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("reorder=2"), std::invalid_argument);
  EXPECT_THROW(congest::parse_fault_plan("reorder_max=65"),
               std::invalid_argument);
}

// --- injector determinism -----------------------------------------------------

TEST(FaultInjector, FatesAreAPureFunctionOfTheArguments) {
  FaultPlan plan = congest::parse_fault_plan("drop=0.3,dup=0.2,reorder=0.3");
  plan.seed = 11;
  const congest::FaultInjector a(plan), b(plan);
  bool any_drop = false, any_clean = false;
  for (long round = 0; round < 64; ++round) {
    const auto fa = a.fate(1, 2, round, 0);
    const auto fb = b.fate(1, 2, round, 0);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.delay, fb.delay);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    any_drop = any_drop || fa.drop;
    any_clean = any_clean || (!fa.drop && !fa.duplicate && fa.delay == 0);
  }
  EXPECT_TRUE(any_drop);   // p=0.3 over 64 draws
  EXPECT_TRUE(any_clean);
}

TEST(FaultInjector, ExtremeProbabilitiesAreExact) {
  FaultPlan always;
  always.drop = 1.0;
  FaultPlan never;  // all probabilities zero
  const congest::FaultInjector all(always), none(never);
  for (long round = 0; round < 32; ++round) {
    EXPECT_TRUE(all.fate(0, 1, round, 0).drop);
    const auto f = none.fate(0, 1, round, 0);
    EXPECT_FALSE(f.drop || f.duplicate || f.corrupt || f.delay > 0);
  }
}

// --- reliable transport: zero-fault parity ------------------------------------

TEST(ReliableTransport, ZeroFaultPlanMatchesPerfectPathExactly) {
  const auto formula = mso::lib::triangle_free();
  for (unsigned seed = 0; seed < 3; ++seed) {
    const Graph g = btd_graph(seed);
    congest::Network perfect(g, {.id_seed = seed + 1});
    const auto ref = dist::run_decision(perfect, formula, 3);
    ASSERT_TRUE(ref.run.ok());

    NetworkConfig cfg;
    cfg.id_seed = seed + 1;
    cfg.faults = FaultPlan{};  // transport on, nothing injected
    congest::Network net(g, cfg);
    const auto out = dist::run_decision(net, formula, 3);
    ASSERT_TRUE(out.run.ok());
    EXPECT_EQ(out.holds, ref.holds) << "seed=" << seed;
    // One physical round per protocol step: identical round accounting.
    EXPECT_EQ(out.total_rounds(), ref.total_rounds()) << "seed=" << seed;
    EXPECT_EQ(net.stats().messages, perfect.stats().messages);
    EXPECT_EQ(net.stats().total_bits, perfect.stats().total_bits);
    EXPECT_EQ(net.stats().retransmissions, 0);
    EXPECT_EQ(net.stats().faults_dropped, 0);
  }
}

// --- reliable transport: oracle-correct under the fault sweep -----------------

const char* kSweepSpecs[] = {
    "drop=0.05", "drop=0.2", "dup=0.1",
    "drop=0.1,dup=0.05,corrupt=0.05,reorder=0.1,reorder_max=2",
};

TEST(FaultSweep, DecisionStaysOracleCorrect) {
  const auto formula = mso::lib::triangle_free();
  for (unsigned seed = 1; seed <= 3; ++seed) {
    const Graph g = btd_graph(seed);
    const bool expected = seq::decide(g, formula);
    for (const char* spec : kSweepSpecs) {
      NetworkConfig cfg = faulty_cfg(spec, seed);
      cfg.faults->seed = seed;
      congest::Network net(g, cfg);
      const auto out = dist::run_decision(net, formula, 3);
      ASSERT_TRUE(out.run.ok()) << spec << " seed=" << seed;
      ASSERT_FALSE(out.treedepth_exceeded);
      EXPECT_EQ(out.holds, expected) << spec << " seed=" << seed;
      if (cfg.faults->drop > 0) {
        EXPECT_GT(net.stats().faults_dropped, 0) << spec;
      }
    }
  }
}

TEST(FaultSweep, OptimizationStaysOracleCorrect) {
  const auto formula = mso::lib::independent_set();
  for (unsigned seed = 1; seed <= 3; ++seed) {
    const Graph g = btd_graph(seed, 8);
    const auto oracle = seq::maximize(g, formula, "S", Sort::VertexSet);
    for (const char* spec : kSweepSpecs) {
      NetworkConfig cfg = faulty_cfg(spec, seed);
      cfg.faults->seed = seed * 7 + 1;
      congest::Network net(g, cfg);
      const auto out = dist::run_maximize(net, formula, "S", Sort::VertexSet, 3);
      ASSERT_TRUE(out.run.ok()) << spec << " seed=" << seed;
      ASSERT_FALSE(out.treedepth_exceeded);
      ASSERT_EQ(out.best_weight.has_value(), oracle.has_value());
      if (oracle) {
        EXPECT_EQ(*out.best_weight, oracle->weight) << spec;
      }
    }
  }
}

TEST(FaultSweep, CountingStaysOracleCorrect) {
  const auto formula = mso::lib::independent_set();
  const std::vector<std::pair<std::string, Sort>> vars{{"S", Sort::VertexSet}};
  for (unsigned seed = 1; seed <= 3; ++seed) {
    const Graph g = btd_graph(seed, 8);
    const auto expected = seq::count(g, formula, vars);
    for (const char* spec : kSweepSpecs) {
      NetworkConfig cfg = faulty_cfg(spec, seed);
      cfg.faults->seed = seed * 3 + 2;
      congest::Network net(g, cfg);
      const auto out = dist::run_count(net, formula, vars, 3);
      ASSERT_TRUE(out.run.ok()) << spec << " seed=" << seed;
      EXPECT_EQ(out.count, expected) << spec << " seed=" << seed;
    }
  }
}

TEST(FaultSweep, OptMarkedStaysOracleCorrect) {
  const auto formula = mso::lib::independent_set();
  for (unsigned seed = 1; seed <= 3; ++seed) {
    Graph g = btd_graph(seed, 8);
    // Mark a maximum independent set so the verifier has a true positive.
    const auto oracle = seq::maximize(g, formula, "S", Sort::VertexSet);
    ASSERT_TRUE(oracle.has_value());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (oracle->vertices[v]) g.set_vertex_label("marked", v);
    congest::Network ref_net(g, {.id_seed = seed});
    const auto ref =
        dist::run_optmarked(ref_net, formula, "S", Sort::VertexSet, 3);
    ASSERT_TRUE(ref.run.ok());
    for (const char* spec : kSweepSpecs) {
      NetworkConfig cfg = faulty_cfg(spec, seed);
      cfg.faults->seed = seed + 17;
      congest::Network net(g, cfg);
      const auto out =
          dist::run_optmarked(net, formula, "S", Sort::VertexSet, 3);
      ASSERT_TRUE(out.run.ok()) << spec << " seed=" << seed;
      EXPECT_EQ(out.satisfies, ref.satisfies) << spec;
      EXPECT_EQ(out.is_optimal, ref.is_optimal) << spec;
      EXPECT_EQ(out.marked_weight, ref.marked_weight) << spec;
    }
  }
}

// --- determinism: same seed, same execution -----------------------------------

TEST(FaultSweep, SameSeedReproducesTheExactTrace) {
  const auto formula = mso::lib::triangle_free();
  const Graph g = btd_graph(2);
  auto digest_run = [&](std::uint64_t fault_seed) {
    audit::RoundDigestSink sink;
    NetworkConfig cfg = faulty_cfg("drop=0.2,dup=0.1,reorder=0.1");
    cfg.faults->seed = fault_seed;
    cfg.sink = &sink;
    congest::Network net(g, cfg);
    const auto out = dist::run_decision(net, formula, 3);
    EXPECT_TRUE(out.run.ok());
    return sink.digests();
  };
  const auto a = digest_run(5), b = digest_run(5), c = digest_run(6);
  EXPECT_EQ(a, b);  // same seed: bit-identical round/fault trace
  EXPECT_NE(a, c);  // different fault seed: different injected pattern
}

// --- crash-stop: structured degradation, never a wrong answer -----------------

TEST(CrashFaults, CrashYieldsStructuredDegradedOutcome) {
  const auto formula = mso::lib::triangle_free();
  for (unsigned seed = 1; seed <= 3; ++seed) {
    const Graph g = btd_graph(seed);
    NetworkConfig cfg = faulty_cfg("crash=2@r25", seed);
    congest::Network net(g, cfg);
    const auto out = dist::run_decision(net, formula, 3);
    EXPECT_FALSE(out.run.ok()) << "seed=" << seed;
    EXPECT_EQ(out.run.status, RunStatus::kCrashed);
    ASSERT_EQ(out.run.crashed.size(), 1u);
    EXPECT_EQ(out.run.crashed[0], 2);
    // A degraded pipeline never claims a treedepth verdict.
    EXPECT_FALSE(out.treedepth_exceeded);
    EXPECT_GT(net.stats().crashes, 0);
  }
}

TEST(CrashFaults, LegacyRunThrowsCrashedError) {
  const Graph g = gen::path(6);
  NetworkConfig cfg = faulty_cfg("crash=1@r5");
  congest::Network net(g, cfg);
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  struct Chatter final : congest::NodeProgram {
    int sent = 0;
    void on_round(congest::NodeCtx& ctx) override {
      if (sent < 30 && ctx.degree() > 0) {
        ctx.send(0, congest::Message(sent, 4));
        ++sent;
      }
    }
    bool done(const congest::NodeCtx&) const override { return sent >= 30; }
  };
  for (int v = 0; v < g.num_vertices(); ++v)
    programs.push_back(std::make_unique<Chatter>());
  EXPECT_THROW(net.run(programs), congest::CrashedError);
  // CrashedError must remain catchable as std::runtime_error (the
  // historical Network::run contract).
  congest::Network net2(gen::path(6), cfg);
  std::vector<std::unique_ptr<congest::NodeProgram>> programs2;
  for (int v = 0; v < 6; ++v) programs2.push_back(std::make_unique<Chatter>());
  EXPECT_THROW(net2.run(programs2), std::runtime_error);
}

TEST(CrashFaults, ReorderComposedWithSameRoundCrashesStaysStructured) {
  // Reorder keeps frames in flight across round boundaries; two crash-stop
  // faults landing in the *same* round as delayed deliveries exercise the
  // crash path while the link queues are non-trivially populated. The
  // contract is unchanged from the single-fault cases: a structured
  // degraded outcome naming every crashed node, never a wrong answer, and
  // a bit-identical round/fault trace for equal seeds.
  const auto formula = mso::lib::triangle_free();
  const Graph g = btd_graph(2);
  const std::string spec = "reorder=0.4,reorder_max=3,crash=2@r12,crash=3@r12";
  auto crashed_run = [&](std::uint64_t fault_seed) {
    audit::RoundDigestSink sink;
    NetworkConfig cfg = faulty_cfg(spec, 2);
    cfg.faults->seed = fault_seed;
    cfg.sink = &sink;
    congest::Network net(g, cfg);
    const auto out = dist::run_decision(net, formula, 3);
    EXPECT_FALSE(out.run.ok());
    EXPECT_EQ(out.run.status, RunStatus::kCrashed);
    // Both crash-stops fire in the one round; the degraded outcome names
    // both nodes and still claims no verdict.
    EXPECT_EQ(out.run.crashed.size(), 2u);
    EXPECT_EQ(std::count(out.run.crashed.begin(), out.run.crashed.end(), 2), 1);
    EXPECT_EQ(std::count(out.run.crashed.begin(), out.run.crashed.end(), 3), 1);
    EXPECT_FALSE(out.treedepth_exceeded);
    return sink.digests();
  };
  const auto a = crashed_run(9), b = crashed_run(9), c = crashed_run(10);
  EXPECT_EQ(a, b);  // same seed: reorder delays + crash cut are reproducible
  EXPECT_NE(a, c);  // different seed: different in-flight pattern at the cut

  // The same composition with the crashes aimed at an id absent from the
  // network is inert: reorder alone must leave the verdict oracle-equal.
  const bool expected = seq::decide(g, formula);
  NetworkConfig cfg =
      faulty_cfg("reorder=0.4,reorder_max=3,crash=99@r12,crash=98@r12", 2);
  cfg.faults->seed = 9;
  congest::Network net(g, cfg);
  const auto out = dist::run_decision(net, formula, 3);
  ASSERT_TRUE(out.run.ok());
  EXPECT_EQ(out.holds, expected);
}

TEST(CrashFaults, CrashIdAbsentFromNetworkIsInert) {
  const Graph g = gen::path(5);  // ids 0..4: crash id 99 never fires
  NetworkConfig cfg = faulty_cfg("crash=99@r2");
  congest::Network net(g, cfg);
  const auto leader = congest::run_leader_election(net, 6);
  EXPECT_TRUE(leader.run.ok());
  EXPECT_EQ(leader.leader, 0);
}

// --- round budget: degraded outcome names the stalled phase -------------------

TEST(RoundBudget, ExhaustionNamesTheStalledPhase) {
  const Graph g = btd_graph(1);
  NetworkConfig cfg;
  cfg.id_seed = 1;
  cfg.faults = FaultPlan{};  // transport on so phases are tracked
  cfg.max_rounds = 20;       // elim-tree needs far more
  congest::Network net(g, cfg);
  const auto out = dist::run_elim_tree(net, 3);
  EXPECT_FALSE(out.run.ok());
  EXPECT_EQ(out.run.status, RunStatus::kRoundLimit);
  EXPECT_EQ(out.run.stalled_phase, "elim-tree");
  EXPECT_FALSE(out.success);  // never misread as a treedepth verdict
}

TEST(RoundBudget, PerfectPathAlsoReportsStalledPhase) {
  const Graph g = btd_graph(1);
  NetworkConfig cfg;
  cfg.id_seed = 1;
  cfg.track_phases = true;  // no faults: the perfect loop path
  cfg.max_rounds = 20;
  congest::Network net(g, cfg);
  const auto out = dist::run_elim_tree(net, 3);
  EXPECT_FALSE(out.run.ok());
  EXPECT_EQ(out.run.status, RunStatus::kRoundLimit);
  EXPECT_EQ(out.run.stalled_phase, "elim-tree");
}

// --- best-effort sends under the reliable transport ---------------------------

TEST(BestEffort, SendUnreliableIsLossyButNeverStallsTheRound) {
  // Node 0 streams 40 best-effort pings to node 1 under 40% drop: some are
  // lost (no retransmission for best-effort payloads), but every virtual
  // round still closes, so the schedule-driven programs finish on time.
  struct Pinger final : congest::NodeProgram {
    int round = 0;
    void on_round(congest::NodeCtx& ctx) override {
      if (round < 40)
        ctx.send_unreliable(0, congest::Message(round, 8));
      ++round;
    }
    bool done(const congest::NodeCtx&) const override { return round >= 41; }
  };
  struct Counter final : congest::NodeProgram {
    int round = 0;
    int received = 0;
    void on_round(congest::NodeCtx& ctx) override {
      const auto& msg = ctx.recv(0);
      if (msg && std::any_cast<int>(&msg->value) != nullptr) ++received;
      ++round;
    }
    bool done(const congest::NodeCtx&) const override { return round >= 41; }
  };
  const Graph g = gen::path(2);
  NetworkConfig cfg = faulty_cfg("drop=0.4,seed=9");
  congest::Network net(g, cfg);
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  auto pinger = std::make_unique<Pinger>();
  auto counter = std::make_unique<Counter>();
  Counter* counter_handle = counter.get();
  programs.push_back(std::move(pinger));
  programs.push_back(std::move(counter));
  const auto outcome = net.run_outcome(programs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(counter_handle->received, 0);
  EXPECT_LT(counter_handle->received, 40);  // drop=0.4 loses some for real
  EXPECT_GT(net.stats().faults_dropped, 0);
}

// --- fragment reassembly under duplication and reordering ---------------------

TEST(FragmentReassembly, DupAndReorderDeliverEachMessageOnceInOrder) {
  // Raw transport (no reliable shim) with heavy duplication + reordering
  // but no loss: the FragmentReassembler must surface exactly the sent
  // payload sequence, each message once, in order, despite duplicated and
  // overtaking chunks.
  struct Sender final : congest::NodeProgram {
    congest::FragmentSender sender;
    bool queued = false;
    void on_round(congest::NodeCtx& ctx) override {
      if (!queued) {
        queued = true;
        // Three logical messages, each fragmented across several chunks.
        sender.enqueue(0, 10, 3 * ctx.bandwidth());
        sender.enqueue(0, 20, 2 * ctx.bandwidth());
        sender.enqueue(0, 30, 3 * ctx.bandwidth());
      }
      sender.pump(ctx);
    }
    bool done(const congest::NodeCtx&) const override {
      return queued && sender.idle();
    }
  };
  struct Receiver final : congest::NodeProgram {
    congest::FragmentReassembler reasm;
    std::vector<int> got;
    int idle_rounds = 0;
    void on_round(congest::NodeCtx& ctx) override {
      if (auto payload = reasm.poll(ctx, 0))
        got.push_back(std::any_cast<int>(*payload));
      idle_rounds = got.size() >= 3 ? idle_rounds + 1 : 0;
    }
    bool done(const congest::NodeCtx&) const override {
      return idle_rounds >= 8;  // drain straggler duplicates
    }
  };
  const Graph g = gen::path(2);
  NetworkConfig cfg =
      faulty_cfg("dup=0.6,reorder=0.6,reorder_max=3,transport=raw,seed=3");
  congest::Network net(g, cfg);
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  auto sender = std::make_unique<Sender>();
  auto receiver = std::make_unique<Receiver>();
  Receiver* handle = receiver.get();
  programs.push_back(std::move(sender));
  programs.push_back(std::move(receiver));
  const auto outcome = net.run_outcome(programs);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(handle->got, (std::vector<int>{10, 20, 30}));
  EXPECT_GT(net.stats().faults_duplicated, 0);
}

}  // namespace
}  // namespace dmc
