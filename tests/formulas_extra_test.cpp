// Extended formula library: brute-force semantics vs combinatorial truth,
// plus engine agreement through the sequential pipeline.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

using mso::Sort;
namespace lib = mso::lib;

TEST(FormulasExtra, HasClique) {
  EXPECT_TRUE(mso::evaluate(gen::clique(4), *lib::has_clique(3)));
  EXPECT_TRUE(mso::evaluate(gen::clique(4), *lib::has_clique(4)));
  EXPECT_FALSE(mso::evaluate(gen::clique(4), *lib::has_clique(5)));
  EXPECT_FALSE(mso::evaluate(gen::cycle(5), *lib::has_clique(3)));
}

TEST(FormulasExtra, HasPath) {
  EXPECT_TRUE(mso::evaluate(gen::path(5), *lib::has_path(5)));
  EXPECT_FALSE(mso::evaluate(gen::path(4), *lib::has_path(5)));
  EXPECT_TRUE(mso::evaluate(gen::cycle(5), *lib::has_path(5)));
  EXPECT_TRUE(mso::evaluate(gen::star(4), *lib::has_path(3)));
  EXPECT_FALSE(mso::evaluate(gen::star(4), *lib::has_path(4)));
}

TEST(FormulasExtra, Cograph) {
  EXPECT_FALSE(mso::evaluate(gen::path(4), *lib::cograph()));  // P4 itself
  EXPECT_TRUE(mso::evaluate(gen::clique(4), *lib::cograph()));
  EXPECT_TRUE(mso::evaluate(gen::complete_bipartite(2, 3), *lib::cograph()));
  EXPECT_FALSE(mso::evaluate(gen::cycle(5), *lib::cograph()));
}

TEST(FormulasExtra, MaxDegree) {
  EXPECT_TRUE(mso::evaluate(gen::cycle(5), *lib::max_degree_le(2)));
  EXPECT_FALSE(mso::evaluate(gen::star(3), *lib::max_degree_le(2)));
  EXPECT_TRUE(mso::evaluate(gen::star(3), *lib::max_degree_le(3)));
}

TEST(FormulasExtra, TotalDominatingSet) {
  const Graph g = gen::path(4);
  // {1,2} totally dominates P4 (ends have neighbors in the set, and the
  // set members have each other).
  EXPECT_TRUE(mso::evaluate(g, *lib::total_dominating_set(),
                            {{"S", mso::Value::vertex_set(0b0110)}}));
  // {0,3} leaves 0 and 3 without neighbors in S.
  EXPECT_FALSE(mso::evaluate(g, *lib::total_dominating_set(),
                             {{"S", mso::Value::vertex_set(0b1001)}}));
}

TEST(FormulasExtra, ConnectedSetSemantics) {
  const Graph g = gen::path(4);
  EXPECT_TRUE(mso::evaluate(g, *lib::connected_set(),
                            {{"S", mso::Value::vertex_set(0b0011)}}));
  EXPECT_FALSE(mso::evaluate(g, *lib::connected_set(),
                             {{"S", mso::Value::vertex_set(0b1001)}}));
  EXPECT_TRUE(mso::evaluate(g, *lib::connected_set(),
                            {{"S", mso::Value::vertex_set(0)}}));  // empty ok
  EXPECT_TRUE(mso::evaluate(g, *lib::connected_set(),
                            {{"S", mso::Value::vertex_set(0b0100)}}));
}

TEST(FormulasExtra, ConnectedDominatingSetViaEngine) {
  // On P5 the minimum connected dominating set is the middle path {1,2,3}.
  const Graph g = gen::path(5);
  const auto result = seq::minimize(g, lib::connected_dominating_set(), "S",
                                    Sort::VertexSet);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->weight, 3);
}

TEST(FormulasExtra, EdgeDominatingSet) {
  const Graph g = gen::path(4);  // edges 0:0-1, 1:1-2, 2:2-3
  EXPECT_TRUE(mso::evaluate(g, *lib::edge_dominating_set(),
                            {{"F", mso::Value::edge_set(0b010)}}));
  EXPECT_FALSE(mso::evaluate(g, *lib::edge_dominating_set(),
                             {{"F", mso::Value::edge_set(0b100)}}));
  const auto result =
      seq::minimize(g, lib::edge_dominating_set(), "F", Sort::EdgeSet);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->weight, 1);  // the middle edge dominates all
}

TEST(FormulasExtra, EngineAgreesWithBruteForceOnNewClosedFormulas) {
  gen::Rng rng(55);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = gen::random_bounded_treedepth(7, 2, 0.5, rng);
    EXPECT_EQ(seq::decide(g, lib::has_clique(3)),
              mso::evaluate(g, *lib::has_clique(3)));
    EXPECT_EQ(seq::decide(g, lib::has_path(3)),
              mso::evaluate(g, *lib::has_path(3)));
  }
}

TEST(FormulasExtra, TotalDominationViaEngineMatchesBruteForce) {
  gen::Rng rng(66);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::random_bounded_treedepth(7, 3, 0.5, rng);
    const auto engine_result =
        seq::minimize(g, lib::total_dominating_set(), "S", Sort::VertexSet);
    // brute force
    Weight best = -1;
    for (std::uint64_t m = 0; m < (1ull << g.num_vertices()); ++m) {
      if (!mso::evaluate(g, *lib::total_dominating_set(),
                         {{"S", mso::Value::vertex_set(m)}}))
        continue;
      const Weight w = std::popcount(m);
      if (best < 0 || w < best) best = w;
    }
    if (best < 0) {
      EXPECT_FALSE(engine_result.has_value());
    } else {
      ASSERT_TRUE(engine_result.has_value());
      EXPECT_EQ(engine_result->weight, best) << "trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace dmc
