#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "td/elimination_forest.hpp"

namespace dmc {
namespace {

TEST(Generators, Path) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_acyclic(g));
}

TEST(Generators, Cycle) {
  const Graph g = gen::cycle(6);
  EXPECT_EQ(g.num_edges(), 6);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_FALSE(is_acyclic(g));
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
}

TEST(Generators, Clique) {
  const Graph g = gen::clique(5);
  EXPECT_EQ(g.num_edges(), 10);
}

TEST(Generators, Star) {
  const Graph g = gen::star(7);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.degree(0), 7);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = gen::complete_bipartite(2, 3);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Generators, Grid) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BinaryTree) {
  const Graph g = gen::binary_tree(4);
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Caterpillar) {
  const Graph g = gen::caterpillar(4, 2);
  EXPECT_EQ(g.num_vertices(), 4 + 8);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, StarOfCliques) {
  const Graph g = gen::star_of_cliques(3, 4);
  EXPECT_EQ(g.num_vertices(), 13);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Wheel) {
  const Graph g = gen::wheel(6);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.degree(6), 6);  // hub
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(gen::wheel(2), std::invalid_argument);
}

TEST(Generators, KaryTree) {
  const Graph g = gen::kary_tree(3, 3);
  EXPECT_EQ(g.num_vertices(), 1 + 3 + 9);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_TRUE(is_connected(g));
  // treedepth of a 3-level tree is 3 (root path)
  EXPECT_EQ(exact_treedepth(g), 3);
  EXPECT_THROW(gen::kary_tree(0, 2), std::invalid_argument);
}

TEST(Generators, RandomTree) {
  gen::Rng rng(1);
  const Graph g = gen::random_tree(20, rng);
  EXPECT_TRUE(is_acyclic(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomConnected) {
  gen::Rng rng(2);
  const Graph g = gen::random_connected(15, 5, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 14 + 5);
}

TEST(Generators, RandomBoundedTreedepthRespectsBound) {
  for (int d = 2; d <= 4; ++d) {
    for (unsigned seed = 0; seed < 5; ++seed) {
      gen::Rng rng(seed);
      const Graph g = gen::random_bounded_treedepth(12, d, 0.4, rng);
      EXPECT_TRUE(is_connected(g));
      EXPECT_LE(exact_treedepth(g), d) << "d=" << d << " seed=" << seed;
    }
  }
}

TEST(Generators, PerturbedGridStaysConnected) {
  gen::Rng rng(3);
  const Graph g = gen::perturbed_grid(4, 5, 6, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.num_edges(), gen::grid(4, 5).num_edges());
}

TEST(Generators, DisjointUnion) {
  const Graph g = gen::disjoint_union(gen::path(3), gen::cycle(3));
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(num_connected_components(g), 2);
}

TEST(Generators, SpiderShapeAndTreedepth) {
  for (int d = 2; d <= 4; ++d) {
    for (int width = 1; width <= 3; ++width) {
      const int leg = (1 << (d - 1)) - 1;
      const int n = 1 + width * leg;
      if (n > 20) continue;  // exact_treedepth's subset-DP size cap
      const Graph g = gen::spider(d, width);
      EXPECT_EQ(g.num_vertices(), n);
      EXPECT_EQ(g.num_edges(), width * leg);  // a tree
      EXPECT_TRUE(is_connected(g));
      EXPECT_EQ(g.degree(0), width);
      EXPECT_LE(exact_treedepth(g), d) << "d=" << d << " width=" << width;
    }
  }
  EXPECT_THROW(gen::spider(1, 3), std::invalid_argument);
  EXPECT_THROW(gen::spider(3, 0), std::invalid_argument);
}

TEST(Generators, DeeppathShapeAndTreedepth) {
  for (int d = 2; d <= 4; ++d) {
    const int spine = (1 << (d - 1)) - 1;
    for (int n : {spine, spine + 1, std::min(4 * spine + 2, 20)}) {
      const Graph g = gen::deeppath(n, d);
      EXPECT_EQ(g.num_vertices(), n);
      EXPECT_EQ(g.num_edges(), n - 1);  // spine + one edge per leaf
      EXPECT_TRUE(is_connected(g));
      EXPECT_LE(exact_treedepth(g), d) << "d=" << d << " n=" << n;
    }
  }
  // Leaves are spread evenly: no spine vertex carries two more than another.
  const Graph g = gen::deeppath(25, 4);  // spine 7, 18 leaves
  int lo = 25, hi = 0;
  for (int v = 0; v < 7; ++v) {
    lo = std::min(lo, g.degree(v));
    hi = std::max(hi, g.degree(v));
  }
  EXPECT_LE(hi - lo, 2);  // spine ends have one fewer spine edge
  EXPECT_THROW(gen::deeppath(2, 3), std::invalid_argument);
  EXPECT_THROW(gen::deeppath(10, 1), std::invalid_argument);
}

TEST(Generators, SpiderAndDeeppathBuildAtScaleLinearly) {
  // The E16 family: ~10^6 vertices must materialize in O(n). No timing
  // assertion (CI noise) — just that construction completes and the CSR
  // adjacency finalizes; a quadratic builder would time the suite out.
  const Graph s = gen::spider(9, 3922);  // 1 + 3922 * 255 = 1000111
  EXPECT_EQ(s.num_vertices(), 1000111);
  EXPECT_EQ(s.num_edges(), 1000110);
  EXPECT_EQ(s.degree(0), 3922);
  const Graph p = gen::deeppath(1000000, 9);
  EXPECT_EQ(p.num_vertices(), 1000000);
  EXPECT_EQ(p.num_edges(), 999999);
}

TEST(Generators, FamilySpecsParseSpiderAndDeeppath) {
  const Graph s = gen::family("spider:3:5");
  EXPECT_EQ(s.num_vertices(), 1 + 5 * 3);
  const Graph p = gen::family("deeppath:40:3");
  EXPECT_EQ(p.num_vertices(), 40);
  EXPECT_THROW(gen::family("spider:3"), std::invalid_argument);
  EXPECT_THROW(gen::family("deeppath:abc:3"), std::invalid_argument);
}

TEST(Generators, RandomizeWeights) {
  gen::Rng rng(4);
  Graph g = gen::cycle(5);
  gen::randomize_weights(g, -3, 3, rng);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_GE(g.vertex_weight(v), -3);
    EXPECT_LE(g.vertex_weight(v), 3);
  }
}

}  // namespace
}  // namespace dmc
