#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace dmc {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, AddVerticesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.num_vertices(), 3);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(e, 0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
  const VertexId first = g.add_vertices(2);
  EXPECT_EQ(first, 3);
  EXPECT_EQ(g.num_vertices(), 5);
}

TEST(Graph, EdgeEndpointsNormalized) {
  Graph g(4);
  const EdgeId e = g.add_edge(3, 1);
  EXPECT_EQ(g.edge(e).u, 1);
  EXPECT_EQ(g.edge(e).v, 3);
  EXPECT_EQ(g.edge(e).other(1), 3);
  EXPECT_EQ(g.edge(e).other(3), 1);
  EXPECT_THROW(g.edge(e).other(0), std::invalid_argument);
}

TEST(Graph, RejectsLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 7), std::out_of_range);
}

TEST(Graph, EnsureEdgeIsIdempotent) {
  Graph g(3);
  const EdgeId e1 = g.ensure_edge(0, 2);
  const EdgeId e2 = g.ensure_edge(2, 0);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, Labels) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_FALSE(g.vertex_has_label("red", 0));
  g.set_vertex_label("red", 0);
  EXPECT_TRUE(g.vertex_has_label("red", 0));
  EXPECT_FALSE(g.vertex_has_label("red", 1));
  g.set_vertex_label("red", 0, false);
  EXPECT_FALSE(g.vertex_has_label("red", 0));
  g.set_edge_label("mark", e);
  EXPECT_TRUE(g.edge_has_label("mark", e));
  EXPECT_EQ(g.vertex_label_names().size(), 1u);
  EXPECT_EQ(g.edge_label_names().size(), 1u);
}

TEST(Graph, LabelsSurviveVertexGrowth) {
  Graph g(2);
  g.set_vertex_label("red", 1);
  g.add_vertices(3);
  EXPECT_TRUE(g.vertex_has_label("red", 1));
  EXPECT_FALSE(g.vertex_has_label("red", 4));
}

TEST(Graph, Weights) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.vertex_weight(0), 1);  // default
  EXPECT_EQ(g.edge_weight(e), 1);
  g.set_vertex_weight(0, -5);
  g.set_edge_weight(e, 42);
  EXPECT_EQ(g.vertex_weight(0), -5);
  EXPECT_EQ(g.edge_weight(e), 42);
}

TEST(Graph, InducedSubgraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(0, 4);
  g.set_vertex_weight(2, 7);
  g.set_vertex_label("red", 2);
  const EdgeId e12 = g.edge_id(1, 2);
  g.set_edge_weight(e12, 9);
  g.set_edge_label("mark", e12);

  std::vector<VertexId> old_to_new;
  Graph sub = g.induced_subgraph({1, 2, 3}, &old_to_new);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 2);
  EXPECT_TRUE(sub.has_edge(0, 1));  // 1-2
  EXPECT_TRUE(sub.has_edge(1, 2));  // 2-3
  EXPECT_EQ(old_to_new[1], 0);
  EXPECT_EQ(old_to_new[0], -1);
  EXPECT_EQ(sub.vertex_weight(1), 7);
  EXPECT_TRUE(sub.vertex_has_label("red", 1));
  const EdgeId ne = sub.edge_id(0, 1);
  EXPECT_EQ(sub.edge_weight(ne), 9);
  EXPECT_TRUE(sub.edge_has_label("mark", ne));
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.induced_subgraph({0, 0}), std::invalid_argument);
}

TEST(Graph, Neighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto nb = g.neighbors(0);
  EXPECT_EQ(nb.size(), 3u);
}

}  // namespace
}  // namespace dmc
