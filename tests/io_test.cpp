#include "graph/io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmc::io {
namespace {

TEST(Io, DimacsRoundTrip) {
  Graph g = gen::cycle(5);
  g.set_vertex_weight(2, -7);
  g.set_edge_weight(1, 13);
  g.set_vertex_label("red", 0);
  g.set_edge_label("mark", 3);
  const Graph back = from_dimacs(to_dimacs(g));
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
  EXPECT_EQ(back.vertex_weight(2), -7);
  EXPECT_EQ(back.edge_weight(1), 13);
  EXPECT_TRUE(back.vertex_has_label("red", 0));
  EXPECT_FALSE(back.vertex_has_label("red", 1));
  EXPECT_TRUE(back.edge_has_label("mark", 3));
}

TEST(Io, DimacsParsesCommentsAndBlankLines) {
  const Graph g = from_dimacs("c hello\n\np edge 3 2\nc mid\ne 1 2\ne 2 3\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Io, DimacsErrors) {
  EXPECT_THROW(from_dimacs(""), std::invalid_argument);
  EXPECT_THROW(from_dimacs("e 1 2\n"), std::invalid_argument);  // no header
  EXPECT_THROW(from_dimacs("p edge 2 1\ne 1 5\n"), std::invalid_argument);
  EXPECT_THROW(from_dimacs("p edge 2 0\nxx\n"), std::invalid_argument);
  EXPECT_THROW(from_dimacs("p edge 2 0\np edge 2 0\n"), std::invalid_argument);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = gen::grid(3, 3);
  const Graph back = from_edge_list(to_edge_list(g));
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
}

TEST(Io, EdgeListErrors) {
  EXPECT_THROW(from_edge_list("nonsense"), std::invalid_argument);
  EXPECT_THROW(from_edge_list("2 1\n0"), std::invalid_argument);
}

TEST(Io, EmptyGraph) {
  const Graph g = from_dimacs("p edge 0 0\n");
  EXPECT_EQ(g.num_vertices(), 0);
  const Graph h = from_edge_list("0 0\n");
  EXPECT_EQ(h.num_vertices(), 0);
}

}  // namespace
}  // namespace dmc::io
