// dmc-lint --self-test fixture: deliberately nonconforming protocol code.
//
// Never compiled — scanned by the lint_fixtures ctest entry, which runs
// `dmc-lint --self-test` over this directory and requires the emitted
// findings to match the `lint-expect:` markers below exactly (missed or
// extra findings fail the test). Each marker names the rule that must fire
// on its line; unmarked lines must stay clean.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

struct GoodMsg {
  int x = 0;
};
struct BadMsg {
  int x = 0;
};

void register_fixture_codecs() {
  audit::register_codec<GoodMsg>("fixture::GoodMsg", enc, dec, eq);
}

std::unordered_map<int, int> table;

void on_round(NodeCtx& ctx) {
  for (const auto& [k, v] : table) use(k, v);  // lint-expect: unordered-iteration
  auto it = table.begin();  // lint-expect: unordered-iteration
  int r = rand();  // lint-expect: nondeterminism
  long t = time(nullptr);  // lint-expect: nondeterminism
  std::random_device rd;  // lint-expect: nondeterminism
  auto tick = std::chrono::steady_clock::now();  // lint-expect: raw-clock
  auto tock = Clock::now();  // lint-expect: raw-clock
  static int rounds_seen = 0;  // lint-expect: global-state
  ctx.send(0, Message(BadMsg{r}, 8));  // lint-expect: unregistered-payload
  ctx.send(0, Message(GoodMsg{1}, 8));  // registered above: clean
  static int tolerated = 0;  // dmc-lint: allow(global-state)
  use(it, t, rd, tick, rounds_seen, tolerated);
}
