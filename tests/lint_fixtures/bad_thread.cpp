// dmc-lint --self-test fixture for the raw-thread rule.
//
// Never compiled — scanned by the lint_fixtures ctest entry. Raw thread
// primitives outside src/par must be flagged; the suppression comment and
// the pool-owned copy of this pattern (src/par/worker.cpp next to this
// corpus) must stay clean.
#include <future>
#include <thread>

void fan_out() {
  std::thread worker([] {});  // lint-expect: raw-thread
  worker.join();
  std::jthread scoped([] {});  // lint-expect: raw-thread
  auto f = std::async([] { return 1; });  // lint-expect: raw-thread
  f.get();
  std::thread tolerated([] {});  // dmc-lint: allow(raw-thread)
  tolerated.join();
}

// std::thread::hardware_concurrency is still a raw-thread mention: callers
// should use par::hardware_threads() so the --threads=0 default is uniform.
unsigned probe() {
  return std::thread::hardware_concurrency();  // lint-expect: raw-thread
}
