// dmc-lint --self-test fixture for the raw-metric rule.
//
// Never compiled — the path deliberately contains "src/congest" so the
// rule applies (it is scoped to the simulator and protocol trees; the
// metric primitives in src/metrics and the pool helpers in src/par are
// the sanctioned owners of raw atomics). Scanned by the lint_fixtures
// ctest entry.

struct LinkState {
  std::atomic<long long> bits_sent{0};  // lint-expect: raw-metric
  long long round_bits = 0;  // plain accumulator: no finding
};

void on_deliver(LinkState& link, int bits) {
  // The sanctioned spellings stay quiet: a registry handle...
  metrics::global()->counter("x.bits").add(bits);
  // ...and the pool's helper over a plain member.
  par::atomic_fetch_add(link.round_bits, static_cast<long long>(bits));
  // A deliberate low-level atomic is suppressible at the call site.
  std::atomic_ref<long long>(link.round_bits).store(0);  // dmc-lint: allow(raw-metric)
}
