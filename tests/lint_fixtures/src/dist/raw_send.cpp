// dmc-lint --self-test fixture for the raw-send rule.
//
// Never compiled — the path deliberately contains "src/dist" so the rule
// applies (it is scoped to protocol sources; the transport layer itself
// may use best-effort sends freely). Scanned by the lint_fixtures ctest
// entry together with ../../bad_protocol.cpp.

// Registered so the unregistered-payload rule stays quiet here (this
// fixture exercises raw-send only).
const bool reg = (audit::register_codec<Ping>("Ping", enc, dec, eq), true);

void on_round(NodeCtx& ctx) {
  ctx.send_unreliable(0, Message(Ping{}, 1));  // lint-expect: raw-send
  ctx.send(0, Message(Ping{}, 1));  // plain send: no finding
  ctx.send_unreliable(1, Message(Ping{}, 1));  // dmc-lint: allow(raw-send)
}
