// dmc-lint --self-test fixture: the clock seam's own tree is exempt from
// the raw-clock rule — src/obs implements obs::now_ms()/now_us(), so its
// chrono reads are the sanctioned ones. No lint-expect markers: every
// line below must stay clean. Never compiled.
#include <chrono>

long long seam_read_ms() {
  const auto t = std::chrono::steady_clock::now();  // exempt: src/obs owns it
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}
