// dmc-lint --self-test fixture: the raw-thread rule must NOT fire under
// src/par — the pool implementation is the one owner of std::thread.
// Never compiled; no lint-expect markers, so any finding here fails the
// self-test.
#include <thread>
#include <vector>

struct PoolLike {
  std::vector<std::thread> workers;
  void spawn() { workers.emplace_back([] {}); }
  ~PoolLike() {
    for (std::thread& t : workers)
      if (t.joinable()) t.join();
  }
};

unsigned pool_default_threads() { return std::thread::hardware_concurrency(); }
