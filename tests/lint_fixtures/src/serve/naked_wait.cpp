// dmc-lint --self-test fixture for the naked-condvar-wait rule.
//
// Never compiled — the path sits under "src/serve", outside the audited
// exemptions (src/par, src/bpt/universe_tier.cpp), so every lock-only
// condition_variable wait must be flagged. Scanned by the lint_fixtures
// ctest entry.

void drain(std::condition_variable& cv, std::mutex& m, bool& done) {
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock);  // lint-expect: naked-condvar-wait
  while (!done) {
    cv_.wait(lock);  // lint-expect: naked-condvar-wait
  }
}

void fine(std::condition_variable& cv, std::mutex& m, bool& done) {
  std::unique_lock<std::mutex> lk(m);
  // The predicate overload stays quiet: the comma breaks the match...
  cv.wait(lk, [&] { return done; });
  // ...as do the timed variants (a different rule's concern, if any)...
  cv.wait_for(lk, std::chrono::milliseconds(5));
  cv.wait_until(lk, deadline);
  // ...and an audited hand-rolled loop is suppressible at the call site.
  cv.wait(lk);  // dmc-lint: allow(naked-condvar-wait)
}
