// dmc-lint --self-test fixture for the raw-io rule.
//
// Never compiled — the path sits under "src/serve" but outside the
// sanctioned io layer (src/serve/io*), so every global-namespace
// descriptor call must be flagged. Scanned by the lint_fixtures ctest
// entry.

int open_backdoor_socket(const char* path) {
  const int fd = ::socket(1, 1, 0);  // lint-expect: raw-io
  ::bind(fd, nullptr, 0);  // lint-expect: raw-io
  ::listen(fd, 8);  // lint-expect: raw-io
  return fd;
}

void chat(int fd) {
  char buf[64];
  ::read(fd, buf, sizeof(buf));  // lint-expect: raw-io
  ::write(fd, buf, 1);  // lint-expect: raw-io
  ::recv(fd, buf, sizeof(buf), 0);  // lint-expect: raw-io
  ::send(fd, buf, 1, 0);  // lint-expect: raw-io
  ::poll(nullptr, 0, 10);  // lint-expect: raw-io
  ::close(fd);  // lint-expect: raw-io
}

void fine(Connection& conn) {
  // The sanctioned spellings stay quiet: the serve::io line verbs...
  std::string line;
  conn.read_line(line, 100);
  conn.write_line(line);
  // ...namespaced helpers that merely *contain* a banned name...
  io::read_dimacs_header(line);
  obj.send_line(line);
  // ...and std:: stream flags (a `::` not in the global namespace).
  stream.open(line, std::ios::in);
  // A deliberate low-level call is suppressible at the call site.
  ::close(3);  // dmc-lint: allow(raw-io)
}
