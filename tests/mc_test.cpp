// Tests for the dmc-mc model-checking stack (src/mc/): the DPOR explorer,
// the congest and serve Systems, counterexample capture, and .dmcsched
// trace round-trips. Labelled `mc` (ctest -L mc); CI runs the label under
// ASan/UBSan and a nightly deeper-bound sweep (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"
#include "mc/sched_trace.hpp"

namespace {

using dmc::mc::ExplorerOptions;
using dmc::mc::ExploreResult;
using dmc::mc::ScenarioOptions;

ExploreResult explore_scenario(const std::string& name, bool dpor,
                               int defer_bound = 1, int extra_tx_bound = 1,
                               long max_schedules = 200000) {
  ScenarioOptions so;
  so.defer_bound = defer_bound;
  so.extra_tx_bound = extra_tx_bound;
  auto sys = dmc::mc::make_scenario(name, so);
  ExplorerOptions eo;
  eo.dpor = dpor;
  eo.max_schedules = max_schedules;
  return dmc::mc::explore(*sys, eo);
}

TEST(McExplorer, TransportPairExploresClean) {
  ExploreResult r = explore_scenario("transport-pair", /*dpor=*/true);
  EXPECT_TRUE(r.clean()) << r.violations << " violations";
  EXPECT_GT(r.schedules, 1);
  EXPECT_FALSE(r.hit_schedule_cap);
  // The payload handoff outcome is schedule-independent: every execution
  // digested against the first one.
  EXPECT_TRUE(r.have_reference_digest);
  EXPECT_FALSE(r.digest_divergence);
}

TEST(McExplorer, DporReducesTransportPair) {
  ExploreResult full = explore_scenario("transport-pair", /*dpor=*/false);
  ExploreResult dpor = explore_scenario("transport-pair", /*dpor=*/true);
  EXPECT_TRUE(full.clean());
  EXPECT_TRUE(dpor.clean());
  EXPECT_FALSE(full.hit_schedule_cap);
  EXPECT_FALSE(dpor.hit_schedule_cap);
  EXPECT_GT(dpor.schedules, 0);
  // The reduction factor the CLI logs must exceed 1: commuting
  // interleavings are explored once.
  EXPECT_LT(dpor.schedules, full.schedules);
  EXPECT_EQ(full.reference_digest, dpor.reference_digest);
}

TEST(McExplorer, ChainFragmentRelayExactlyOnce) {
  // Defer budget only (the retransmit space is demonstrably much larger);
  // every explored interleaving must reassemble each hop exactly once.
  ExploreResult r = explore_scenario("transport-chain3", /*dpor=*/true,
                                     /*defer_bound=*/1, /*extra_tx_bound=*/0);
  EXPECT_TRUE(r.clean()) << r.violations << " violations";
  EXPECT_FALSE(r.hit_schedule_cap);
  EXPECT_GT(r.schedules, 50);
  EXPECT_TRUE(r.have_reference_digest);
}

TEST(McExplorer, CrashTaxonomyHoldsAtEveryPosition) {
  ExploreResult full = explore_scenario("transport-crash3", /*dpor=*/false,
                                        /*defer_bound=*/0,
                                        /*extra_tx_bound=*/0);
  ExploreResult dpor = explore_scenario("transport-crash3", /*dpor=*/true,
                                        /*defer_bound=*/0,
                                        /*extra_tx_bound=*/0);
  EXPECT_TRUE(full.clean());
  EXPECT_TRUE(dpor.clean());
  EXPECT_FALSE(full.hit_schedule_cap);
  EXPECT_LT(dpor.schedules, full.schedules);
}

TEST(McExplorer, ChurnRepairDigestStableAcrossSchedules) {
  // One churn episode (init + edge-deletion repair epoch) is ~900 choice
  // points deep — a full dmc pipeline runs under the hook twice — so the
  // default depth bound would prune every execution; the schedule cap
  // bounds the run instead. Every explored interleaving must complete,
  // digest-match the schedule-free oracle inside the execution, and agree
  // on the episode digest across executions.
  ScenarioOptions so;
  auto sys = dmc::mc::make_scenario("churn-repair", so);
  ExplorerOptions eo;
  eo.depth_bound = 4096;
  eo.max_schedules = 32;
  ExploreResult r = dmc::mc::explore(*sys, eo);
  EXPECT_TRUE(r.clean()) << r.violations << " violations";
  EXPECT_GT(r.schedules, 1);
  EXPECT_EQ(r.pruned, 0);
  EXPECT_TRUE(r.have_reference_digest);
  EXPECT_FALSE(r.digest_divergence);
}

TEST(McExplorer, ChurnCrashTaxonomyHoldsAtEveryPosition) {
  // Crash positioning legitimately changes which epochs survive; the
  // invariant is the degradation taxonomy (a degraded epoch carries a
  // degraded RunOutcome; no exception ever escapes the engine).
  ScenarioOptions so;
  auto sys = dmc::mc::make_scenario("churn-crash", so);
  ExplorerOptions eo;
  eo.depth_bound = 4096;
  eo.max_schedules = 32;
  ExploreResult r = dmc::mc::explore(*sys, eo);
  EXPECT_EQ(r.violations, 0);
  EXPECT_GT(r.schedules, 1);
  EXPECT_EQ(r.pruned, 0);
}

TEST(McExplorer, ServeSchedulerInvariantsHold) {
  ExploreResult full = explore_scenario("serve-sched", /*dpor=*/false);
  ExploreResult dpor = explore_scenario("serve-sched", /*dpor=*/true);
  EXPECT_TRUE(full.clean()) << full.violations << " violations";
  EXPECT_TRUE(dpor.clean()) << dpor.violations << " violations";
  EXPECT_FALSE(full.hit_schedule_cap);
  EXPECT_LT(dpor.schedules, full.schedules);
}

TEST(McExplorer, PlantedBugFoundAndReplays) {
  ScenarioOptions so;  // defaults: defer 1, extra-tx 1 (the bug needs one
                       // adversarial retransmit)
  auto sys = dmc::mc::make_scenario("transport-pair-planted", so);
  ExplorerOptions eo;
  ExploreResult r = dmc::mc::explore(*sys, eo);
  ASSERT_GT(r.violations, 0) << "planted ordering bug not found";
  ASSERT_FALSE(r.counterexamples.empty());
  const dmc::mc::Counterexample& cx = r.counterexamples.front();
  EXPECT_FALSE(cx.violations.empty());

  // The recorded schedule must reproduce the identical violations on a
  // fresh System — the determinism contract of .dmcsched traces.
  auto replay_sys = dmc::mc::make_scenario("transport-pair-planted", so);
  dmc::mc::ReplayResult rr =
      dmc::mc::replay(*replay_sys, dmc::mc::to_trace(cx.steps));
  EXPECT_FALSE(rr.diverged) << rr.divergence;
  EXPECT_EQ(rr.exec.violations, cx.violations);
}

TEST(McExplorer, StopOnViolationStopsEarly) {
  ScenarioOptions so;
  auto sys = dmc::mc::make_scenario("transport-pair-planted", so);
  ExplorerOptions eo;
  eo.stop_on_violation = true;
  ExploreResult r = dmc::mc::explore(*sys, eo);
  EXPECT_GT(r.violations, 0);
  ASSERT_EQ(r.counterexamples.size(), 1u);
}

TEST(McExplorer, UnknownScenarioThrows) {
  EXPECT_THROW(dmc::mc::make_scenario("no-such-scenario", ScenarioOptions{}),
               std::invalid_argument);
}

TEST(McTrace, RoundTripsEntriesAndOptions) {
  dmc::mc::SchedTrace trace;
  trace.scenario = "transport-pair";
  trace.options = {{"defer-bound", "1"}, {"extra-tx-bound", "0"}};
  trace.entries.push_back(dmc::mc::TraceEntry{false, 0xdeadbeefcafef00dull,
                                              "deliver link=0 0->1 order=0"});
  trace.entries.push_back(dmc::mc::TraceEntry{true, 0, ""});
  trace.entries.push_back(dmc::mc::TraceEntry{false, 1, "retransmit link=1"});

  const std::string text = dmc::mc::format_trace(trace);
  dmc::mc::SchedTrace back = dmc::mc::parse_trace(text);
  EXPECT_EQ(back.scenario, trace.scenario);
  EXPECT_EQ(back.options, trace.options);
  ASSERT_EQ(back.entries.size(), trace.entries.size());
  for (std::size_t i = 0; i < trace.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].decline, trace.entries[i].decline);
    EXPECT_EQ(back.entries[i].key, trace.entries[i].key);
    EXPECT_EQ(back.entries[i].label, trace.entries[i].label);
  }
}

TEST(McTrace, RejectsMalformedInput) {
  EXPECT_THROW(dmc::mc::parse_trace(""), std::runtime_error);
  EXPECT_THROW(dmc::mc::parse_trace("dmcsched 2\nend\n"), std::runtime_error);
  EXPECT_THROW(dmc::mc::parse_trace("dmcsched 1\nscenario x\n"),
               std::runtime_error);  // missing end
  EXPECT_THROW(dmc::mc::parse_trace("dmcsched 1\nchoice nokey\nend\n"),
               std::runtime_error);
  EXPECT_THROW(dmc::mc::parse_trace("dmcsched 1\nchoice key=zz\nend\n"),
               std::runtime_error);
  EXPECT_THROW(dmc::mc::parse_trace("dmcsched 1\nbogus\nend\n"),
               std::runtime_error);
}

TEST(McTrace, ReplayDivergenceFallsBackToDefaultPolicy) {
  ScenarioOptions so;
  auto sys = dmc::mc::make_scenario("transport-pair", so);
  // A key that matches no enabled action: replay must flag divergence and
  // still complete the run under the default policy.
  std::vector<dmc::mc::TraceEntry> bogus = {
      dmc::mc::TraceEntry{false, 0x1234ull, "bogus"}};
  dmc::mc::ReplayResult r = dmc::mc::replay(*sys, bogus);
  EXPECT_TRUE(r.diverged);
  EXPECT_FALSE(r.steps.empty());
  EXPECT_TRUE(r.exec.violations.empty()) << r.exec.violations.front();
}

TEST(McTrace, DefaultReplayMatchesExplorationReference) {
  // An empty trace replays the pure default policy; its digest must equal
  // the exploration's reference digest (the default run is execution #1).
  ScenarioOptions so;
  auto sys = dmc::mc::make_scenario("transport-pair", so);
  dmc::mc::ReplayResult r = dmc::mc::replay(*sys, {});
  ExploreResult exp = explore_scenario("transport-pair", /*dpor=*/true);
  ASSERT_TRUE(exp.have_reference_digest);
  EXPECT_TRUE(r.exec.digest_valid);
  EXPECT_EQ(r.exec.digest, exp.reference_digest);
}

TEST(McScenarios, RegistryListsAllSeven) {
  std::set<std::string> names;
  for (const auto& [name, desc] : dmc::mc::list_scenarios()) {
    names.insert(name);
    EXPECT_FALSE(desc.empty());
  }
  EXPECT_EQ(names.size(), 7u);
  EXPECT_TRUE(names.count("transport-pair"));
  EXPECT_TRUE(names.count("transport-chain3"));
  EXPECT_TRUE(names.count("transport-crash3"));
  EXPECT_TRUE(names.count("transport-pair-planted"));
  EXPECT_TRUE(names.count("churn-repair"));
  EXPECT_TRUE(names.count("churn-crash"));
  EXPECT_TRUE(names.count("serve-sched"));
}

}  // namespace
