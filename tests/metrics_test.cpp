// Tests for dmc::metrics — the aggregate metrics layer.
//
// The pinned invariants:
//   - a Registry name is a stable identity: re-requesting returns the same
//     instrument, requesting it as a different kind throws;
//   - Histogram log2 bucket edges are exact at the powers of two;
//   - with no registry configured, Network::run() performs no allocation
//     (the same zero-overhead-when-disabled contract as the obs null sink);
//   - concurrent increments from a par::parallel_for job lose nothing
//     (run under TSan by the `par` ctest label);
//   - after a full dist pipeline, the congest.* / transport.* counters
//     reconcile exactly with NetworkStats — same invariant the CLI's
//     "metrics check" asserts (tools/dmc.cpp).
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "par/pool.hpp"

// Global allocation counter for the disabled-path test (same trick as
// tests/obs_trace_test.cpp). Counting is always on; tests read the counter
// around the region of interest.
namespace {
std::atomic<long> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace dmc {
namespace {

using congest::Network;
using congest::NetworkConfig;
using congest::NodeCtx;
using congest::NodeProgram;

TEST(MetricsRegistry, SameNameSameInstrument) {
  metrics::Registry reg;
  metrics::Counter& a = reg.counter("congest.rounds");
  metrics::Counter& b = reg.counter("congest.rounds");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  metrics::Registry reg;
  reg.counter("x.y");
  EXPECT_THROW(reg.gauge("x.y"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x.y"), std::invalid_argument);
  reg.histogram("x.h");
  EXPECT_THROW(reg.counter("x.h"), std::invalid_argument);
}

TEST(MetricsRegistry, RejectsMalformedNames) {
  metrics::Registry reg;
  for (const char* bad :
       {"", ".x", "x.", "a..b", "Upper.case", "sp ace", "dash-ed"})
    EXPECT_THROW(reg.counter(bad), std::invalid_argument) << bad;
  // The full documented alphabet is accepted.
  EXPECT_NO_THROW(reg.counter("az09_.separated.name_2"));
}

TEST(MetricsHistogram, BucketEdgesAtPowersOfTwo) {
  // Bucket 0: v <= 0. Bucket i >= 1: 2^(i-1) <= v < 2^i.
  EXPECT_EQ(metrics::Histogram::bucket_of(-7), 0);
  EXPECT_EQ(metrics::Histogram::bucket_of(0), 0);
  EXPECT_EQ(metrics::Histogram::bucket_of(1), 1);
  for (int i = 1; i < 62; ++i) {
    const long long lo = 1LL << (i - 1);
    EXPECT_EQ(metrics::Histogram::bucket_of(lo), i) << "lo, i=" << i;
    EXPECT_EQ(metrics::Histogram::bucket_of(2 * lo - 1), i) << "hi, i=" << i;
  }
  // The last bucket absorbs everything too wide to classify.
  EXPECT_EQ(metrics::Histogram::bucket_of(std::numeric_limits<long long>::max()),
            metrics::Histogram::kBuckets - 1);
  // Inclusive upper edges mirror the same boundaries.
  EXPECT_EQ(metrics::Histogram::bucket_upper(0), 0);
  EXPECT_EQ(metrics::Histogram::bucket_upper(1), 1);
  EXPECT_EQ(metrics::Histogram::bucket_upper(5), 31);
  EXPECT_EQ(metrics::Histogram::bucket_upper(metrics::Histogram::kBuckets - 1),
            std::numeric_limits<long long>::max());
}

TEST(MetricsHistogram, RecordAggregatesCountSumMax) {
  metrics::Histogram h;
  for (long long v : {0LL, 1LL, 2LL, 3LL, 4LL, 100LL}) h.record(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 110);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.bucket(0), 1);  // 0
  EXPECT_EQ(h.bucket(1), 1);  // 1
  EXPECT_EQ(h.bucket(2), 2);  // 2, 3
  EXPECT_EQ(h.bucket(3), 1);  // 4
  EXPECT_EQ(h.bucket(7), 1);  // 100 in [64, 128)
}

TEST(MetricsGauge, MaxOfIsRunningMax) {
  metrics::Gauge g;
  g.max_of(5);
  g.max_of(3);
  EXPECT_EQ(g.value(), 5);
  g.max_of(9);
  EXPECT_EQ(g.value(), 9);
  g.set(2);  // set() is unconditional
  EXPECT_EQ(g.value(), 2);
}

TEST(MetricsExport, PrometheusTextFormat) {
  metrics::Registry reg;
  reg.counter("congest.rounds").add(12);
  reg.gauge("congest.link.max_bits").set(48);
  metrics::Histogram& h = reg.histogram("transport.ack_latency_rounds");
  h.record(1);
  h.record(3);
  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("# TYPE dmc_congest_rounds counter\n"), std::string::npos);
  EXPECT_NE(s.find("dmc_congest_rounds 12\n"), std::string::npos);
  EXPECT_NE(s.find("# TYPE dmc_congest_link_max_bits gauge\n"),
            std::string::npos);
  EXPECT_NE(s.find("dmc_congest_link_max_bits 48\n"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(s.find("dmc_transport_ack_latency_rounds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(s.find("dmc_transport_ack_latency_rounds_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(s.find("dmc_transport_ack_latency_rounds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(s.find("dmc_transport_ack_latency_rounds_sum 4\n"),
            std::string::npos);
  EXPECT_NE(s.find("dmc_transport_ack_latency_rounds_count 2\n"),
            std::string::npos);
}

TEST(MetricsExport, JsonFieldsAreSpliceable) {
  metrics::Registry reg;
  reg.counter("bpt.folds").add(2);
  reg.histogram("congest.link.round_bits").record(7);
  std::ostringstream out;
  reg.write_json_fields(out);
  // Must parse when wrapped in braces; spot-check the flat keys.
  const std::string s = "{" + out.str() + "}";
  EXPECT_NE(s.find("\"bpt.folds\":2"), std::string::npos);
  EXPECT_NE(s.find("\"congest.link.round_bits.count\":1"), std::string::npos);
  EXPECT_NE(s.find("\"congest.link.round_bits.sum\":7"), std::string::npos);
  EXPECT_NE(s.find("\"congest.link.round_bits.max\":7"), std::string::npos);
}

TEST(MetricsDisabled, NetworkRunDoesNotAllocate) {
  // Mirror of ObsTrace.DisabledPathDoesNotAllocatePerRound: with neither a
  // per-network registry nor a global one, every metrics branch is a single
  // skipped null check and run() must not allocate at all.
  ASSERT_EQ(metrics::global(), nullptr);
  class Quiet : public NodeProgram {
   public:
    void on_round(NodeCtx&) override {}
    bool done(const NodeCtx& ctx) const override { return ctx.round() >= 64; }
  };
  const Graph g = gen::cycle(8);
  Network net(g);  // no registry, no sink
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 8; ++v) programs.push_back(std::make_unique<Quiet>());

  const long before = g_allocations.load(std::memory_order_relaxed);
  const long rounds = net.run(programs);
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GE(rounds, 64);
  EXPECT_EQ(after - before, 0)
      << "metrics-disabled Network::run() allocated " << (after - before)
      << " times over " << rounds << " rounds";
}

TEST(MetricsConcurrent, ParallelIncrementsLoseNothing) {
  // Counter adds and histogram records race from a parallel_for job; the
  // totals must be exact. The `par` ctest label runs this under TSan.
  metrics::Registry reg;
  metrics::Counter& ctr = reg.counter("test.hits");
  metrics::Gauge& peak = reg.gauge("test.peak");
  metrics::Histogram& h = reg.histogram("test.sizes");
  constexpr std::size_t kN = 10'000;
  par::parallel_for(4, kN, [&](std::size_t i) {
    ctr.add(1);
    peak.max_of(static_cast<long long>(i));
    h.record(static_cast<long long>(i % 37));
  });
  EXPECT_EQ(ctr.value(), static_cast<long long>(kN));
  EXPECT_EQ(peak.value(), static_cast<long long>(kN - 1));
  EXPECT_EQ(h.count(), static_cast<long long>(kN));
  long long bucket_total = 0;
  for (int i = 0; i < metrics::Histogram::kBuckets; ++i)
    bucket_total += h.bucket(i);
  EXPECT_EQ(bucket_total, static_cast<long long>(kN));
}

/// Runs the decision pipeline with a per-network registry and asserts the
/// congest.*/transport.* counters reconcile exactly with NetworkStats.
void expect_reconciled(const NetworkConfig& base_cfg) {
  metrics::Registry reg;
  NetworkConfig cfg = base_cfg;
  cfg.metrics = &reg;
  Network net(gen::path(8), cfg);
  const auto out = dist::run_decision(net, mso::lib::connected(), 4);
  ASSERT_FALSE(out.treedepth_exceeded);
  const congest::NetworkStats& stats = net.stats();
  EXPECT_EQ(reg.counter("congest.rounds").value(), stats.rounds);
  EXPECT_EQ(reg.counter("congest.messages").value(), stats.messages);
  EXPECT_EQ(reg.counter("congest.bits").value(), stats.total_bits);
  EXPECT_EQ(reg.counter("transport.frames").value(), stats.frames);
  EXPECT_EQ(reg.counter("transport.frame_bits").value(), stats.frame_bits);
  EXPECT_EQ(reg.counter("transport.marker_frames").value(),
            stats.marker_frames);
  EXPECT_EQ(reg.counter("transport.retransmissions").value(),
            stats.retransmissions);
  // The per-link histograms cover every message and bit exactly once.
  EXPECT_EQ(reg.histogram("congest.link.round_bits").sum(), stats.total_bits);
  EXPECT_EQ(reg.histogram("congest.link.round_messages").sum(),
            stats.messages);
}

TEST(MetricsReconcile, PerfectPathMatchesNetworkStats) {
  NetworkConfig cfg;
  cfg.id_seed = 42;
  expect_reconciled(cfg);
}

TEST(MetricsReconcile, FaultedPathMatchesNetworkStats) {
  NetworkConfig cfg;
  cfg.id_seed = 42;
  cfg.faults = congest::parse_fault_plan("drop=0.1,dup=0.05,seed=7");
  expect_reconciled(cfg);
}

TEST(MetricsReconcile, ZeroFaultTransportMatchesNetworkStats) {
  NetworkConfig cfg;
  cfg.id_seed = 42;
  cfg.faults = congest::FaultPlan{};  // transport on, nothing injected
  expect_reconciled(cfg);
}

}  // namespace
}  // namespace dmc
