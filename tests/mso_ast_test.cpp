#include "mso/ast.hpp"

#include <gtest/gtest.h>

namespace dmc::mso {
namespace {

TEST(MsoAst, BuildersAndToString) {
  const auto f = exists("x", Sort::Vertex,
                        forall("y", Sort::Vertex, lnot(adj("x", "y"))));
  EXPECT_EQ(to_string(*f),
            "exists vertex x. forall vertex y. !(adj(x, y))");
}

TEST(MsoAst, QuantifierRank) {
  EXPECT_EQ(quantifier_rank(*f_true()), 0);
  EXPECT_EQ(quantifier_rank(*adj("x", "y")), 0);
  const auto f = exists("x", Sort::Vertex,
                        forall("y", Sort::Vertex, adj("x", "y")));
  EXPECT_EQ(quantifier_rank(*f), 2);
  const auto g = land(f, exists("z", Sort::Vertex, equal("z", "z")));
  EXPECT_EQ(quantifier_rank(*g), 2);  // max, not sum
}

TEST(MsoAst, FreeVariables) {
  const auto f = exists("x", Sort::Vertex, land(adj("x", "y"), member("x", "S")));
  const auto free = free_variables(*f);
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free[0].first, "y");
  EXPECT_EQ(free[0].second, Sort::Vertex);
  EXPECT_EQ(free[1].first, "S");
  EXPECT_EQ(free[1].second, Sort::VertexSet);
}

TEST(MsoAst, ClosedFormulaHasNoFreeVariables) {
  const auto f = forall("X", Sort::VertexSet,
                        lor(empty_set("X"), border("X")));
  EXPECT_TRUE(free_variables(*f).empty());
}

TEST(MsoAst, ShadowingRestoresOuterSort) {
  // outer X is a vertex set; inner X is a vertex.
  const auto f = exists(
      "X", Sort::VertexSet,
      land(exists("X", Sort::Vertex, adj("X", "X")), empty_set("X")));
  EXPECT_TRUE(free_variables(*f).empty());  // well-formed, no frees
}

TEST(MsoAst, WellFormednessRejectsSortClash) {
  // adj applied to an edge-set variable.
  const auto f = exists("F", Sort::EdgeSet, adj("F", "F"));
  EXPECT_THROW(check_well_formed(*f), std::invalid_argument);
}

TEST(MsoAst, WellFormednessRejectsMixedEquality) {
  const auto f = exists(
      "x", Sort::Vertex, exists("F", Sort::EdgeSet, equal("x", "F")));
  EXPECT_THROW(check_well_formed(*f), std::invalid_argument);
}

TEST(MsoAst, WellFormednessRejectsBadMember) {
  const auto f = exists(
      "x", Sort::Vertex, exists("F", Sort::EdgeSet, member("x", "F")));
  EXPECT_THROW(check_well_formed(*f), std::invalid_argument);
}

TEST(MsoAst, WellFormednessRejectsFullOnEdgeSet) {
  const auto f = exists("F", Sort::EdgeSet, full_set("F"));
  EXPECT_THROW(check_well_formed(*f), std::invalid_argument);
}

TEST(MsoAst, DeclaredFreeVariableSortsAreUsed) {
  const auto f = adj("S", "S");
  const auto free = check_well_formed(*f, {{"S", Sort::VertexSet}});
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0].second, Sort::VertexSet);
}

TEST(MsoAst, LabelUsage) {
  const auto f = exists(
      "x", Sort::Vertex,
      exists("e", Sort::Edge,
             land(label("red", "x"), land(label("mark", "e"),
                                          label("red", "x")))));
  const auto usage = label_usage(*f);
  ASSERT_EQ(usage.vertex_labels.size(), 1u);
  EXPECT_EQ(usage.vertex_labels[0], "red");
  ASSERT_EQ(usage.edge_labels.size(), 1u);
  EXPECT_EQ(usage.edge_labels[0], "mark");
}

TEST(MsoAst, Subformulas) {
  const auto f = land(adj("x", "y"), lnot(f_true()));
  const auto subs = subformulas(*f);
  EXPECT_EQ(subs.size(), 4u);  // and, adj, not, true
  EXPECT_EQ(subs[0]->kind, Kind::And);
}

TEST(MsoAst, LandAllLorAllEmpty) {
  EXPECT_EQ(land_all({})->kind, Kind::True);
  EXPECT_EQ(lor_all({})->kind, Kind::False);
}

}  // namespace
}  // namespace dmc::mso
