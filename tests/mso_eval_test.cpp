// Brute-force evaluator tests: every formula-library entry is checked against
// the exact combinatorial oracles on small graphs.
#include "mso/eval.hpp"

#include <gtest/gtest.h>

#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "mso/parser.hpp"

namespace dmc::mso {
namespace {

TEST(MsoEval, Atomics) {
  Graph g(3);
  g.add_edge(0, 1);
  g.set_vertex_label("red", 2);
  Env env;
  env["x"] = Value::vertex(0);
  env["y"] = Value::vertex(1);
  env["z"] = Value::vertex(2);
  EXPECT_TRUE(evaluate(g, *adj("x", "y"), env));
  EXPECT_FALSE(evaluate(g, *adj("x", "z"), env));
  EXPECT_TRUE(evaluate(g, *equal("x", "x"), env));
  EXPECT_FALSE(evaluate(g, *equal("x", "y"), env));
  EXPECT_TRUE(evaluate(g, *label("red", "z"), env));
  EXPECT_FALSE(evaluate(g, *label("red", "x"), env));
  env["e"] = Value::edge(0);
  EXPECT_TRUE(evaluate(g, *inc("x", "e"), env));
  EXPECT_FALSE(evaluate(g, *inc("z", "e"), env));
  env["A"] = Value::vertex_set(0b011);
  env["B"] = Value::vertex_set(0b001);
  env["C"] = Value::vertex_set(0b100);
  EXPECT_TRUE(evaluate(g, *member("x", "A"), env));
  EXPECT_FALSE(evaluate(g, *member("z", "A"), env));
  EXPECT_TRUE(evaluate(g, *subset("B", "A"), env));
  EXPECT_FALSE(evaluate(g, *subset("A", "B"), env));
  EXPECT_TRUE(evaluate(g, *disjoint("A", "C"), env));
  EXPECT_FALSE(evaluate(g, *disjoint("A", "B"), env));
  EXPECT_TRUE(evaluate(g, *singleton("B"), env));
  EXPECT_FALSE(evaluate(g, *singleton("A"), env));
  env["Z"] = Value::vertex_set(0);
  EXPECT_TRUE(evaluate(g, *empty_set("Z"), env));
  env["All"] = Value::vertex_set(0b111);
  EXPECT_TRUE(evaluate(g, *full_set("All"), env));
  EXPECT_FALSE(evaluate(g, *full_set("A"), env));
  EXPECT_TRUE(evaluate(g, *border("B"), env));    // edge 0-1 leaves {0}
  EXPECT_FALSE(evaluate(g, *border("C"), env));   // vertex 2 isolated
  env["F"] = Value::edge_set(0b1);
  EXPECT_TRUE(evaluate(g, *crossing("F", "B"), env));
  EXPECT_FALSE(evaluate(g, *crossing("F", "A"), env));  // both endpoints in A
  // adjacency between sets
  EXPECT_TRUE(evaluate(g, *adj("A", "A"), env));   // edge inside {0,1}
  EXPECT_FALSE(evaluate(g, *adj("B", "C"), env));
}

TEST(MsoEval, QuantifiersBasic) {
  const Graph p3 = gen::path(3);
  EXPECT_TRUE(evaluate(p3, *parse("exists vertex x, y. adj(x, y)")));
  EXPECT_FALSE(evaluate(p3, *parse("forall vertex x, y. adj(x, y)")));
  EXPECT_TRUE(evaluate(p3, *parse("exists vset X. sing(X)")));
  EXPECT_TRUE(evaluate(p3, *parse("exists eset F. empty(F)")));
}

TEST(MsoEval, TriangleFree) {
  EXPECT_TRUE(evaluate(gen::cycle(5), *lib::triangle_free()));
  EXPECT_FALSE(evaluate(gen::clique(3), *lib::triangle_free()));
  EXPECT_FALSE(evaluate(gen::clique(4), *lib::triangle_free()));
  EXPECT_TRUE(evaluate(gen::grid(2, 3), *lib::triangle_free()));
}

TEST(MsoEval, C4Free) {
  EXPECT_TRUE(evaluate(gen::cycle(5), *lib::c4_free()));
  EXPECT_FALSE(evaluate(gen::cycle(4), *lib::c4_free()));
  EXPECT_FALSE(evaluate(gen::grid(2, 2), *lib::c4_free()));
  EXPECT_FALSE(evaluate(gen::clique(4), *lib::c4_free()));  // C4 subgraph
  EXPECT_TRUE(evaluate(gen::clique(3), *lib::c4_free()));
}

TEST(MsoEval, HFreeMatchesOracle) {
  gen::Rng rng(5);
  const Graph h = gen::path(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::erdos_renyi(6, 0.35, rng);
    EXPECT_EQ(evaluate(g, *lib::h_free(h)), !exact::contains_subgraph(g, h));
    EXPECT_EQ(evaluate(g, *lib::h_free(h, /*induced=*/true)),
              !exact::contains_induced_subgraph(g, h));
  }
}

TEST(MsoEval, Colorability) {
  EXPECT_TRUE(evaluate(gen::cycle(6), *lib::k_colorable(2)));
  EXPECT_FALSE(evaluate(gen::cycle(5), *lib::k_colorable(2)));
  EXPECT_TRUE(evaluate(gen::cycle(5), *lib::k_colorable(3)));
  EXPECT_FALSE(evaluate(gen::clique(4), *lib::not_3_colorable()) ==
               false);  // K4 is not 3-colorable
  EXPECT_TRUE(evaluate(gen::cycle(5), *lib::k_colorable(3)));
}

TEST(MsoEval, ColorabilityMatchesOracle) {
  gen::Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = gen::erdos_renyi(6, 0.5, rng);
    for (int k = 1; k <= 3; ++k)
      EXPECT_EQ(evaluate(g, *lib::k_colorable(k)), exact::is_k_colorable(g, k))
          << "k=" << k;
  }
}

TEST(MsoEval, Acyclic) {
  EXPECT_TRUE(evaluate(gen::path(5), *lib::acyclic()));
  EXPECT_TRUE(evaluate(gen::binary_tree(3), *lib::acyclic()));
  EXPECT_FALSE(evaluate(gen::cycle(4), *lib::acyclic()));
  EXPECT_FALSE(evaluate(gen::clique(3), *lib::acyclic()));
  const Graph forest = gen::disjoint_union(gen::path(3), gen::path(2));
  EXPECT_TRUE(evaluate(forest, *lib::acyclic()));
}

TEST(MsoEval, Connected) {
  EXPECT_TRUE(evaluate(gen::path(4), *lib::connected()));
  EXPECT_FALSE(evaluate(gen::disjoint_union(gen::path(2), gen::path(2)),
                        *lib::connected()));
  EXPECT_TRUE(evaluate(Graph(1), *lib::connected()));
}

TEST(MsoEval, IsolatedVertexVariantsAgree) {
  gen::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::erdos_renyi(6, 0.25, rng);
    EXPECT_EQ(evaluate(g, *lib::has_isolated_vertex()),
              evaluate(g, *lib::has_isolated_vertex_lowrank()));
  }
}

TEST(MsoEval, DegreeAtLeast) {
  EXPECT_TRUE(evaluate(gen::star(3), *lib::has_vertex_of_degree_ge(3)));
  EXPECT_FALSE(evaluate(gen::path(5), *lib::has_vertex_of_degree_ge(3)));
  EXPECT_TRUE(evaluate(gen::path(5), *lib::has_vertex_of_degree_ge(2)));
}

TEST(MsoEval, Properly2Colored) {
  Graph g = gen::path(3);
  g.set_vertex_label("red", 0);
  g.set_vertex_label("blue", 1);
  g.set_vertex_label("red", 2);
  EXPECT_TRUE(evaluate(g, *lib::properly_2_colored()));
  g.set_vertex_label("red", 1);
  g.set_vertex_label("blue", 1, false);
  EXPECT_FALSE(evaluate(g, *lib::properly_2_colored()));
}

TEST(MsoEval, IndependentSetVariantsAgree) {
  gen::Rng rng(8);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = gen::erdos_renyi(5, 0.5, rng);
    for (std::uint64_t mask = 0; mask < (1u << 5); ++mask) {
      Env env{{"S", Value::vertex_set(mask)}};
      EXPECT_EQ(evaluate(g, *lib::independent_set(), env),
                evaluate(g, *lib::independent_set_naive(), env));
    }
  }
}

TEST(MsoEval, SpanningTreeFormula) {
  const Graph g = gen::cycle(4);
  // edges 0:0-1, 1:1-2, 2:2-3, 3:3-0
  EXPECT_TRUE(evaluate(g, *lib::spanning_tree(),
                       {{"F", Value::edge_set(0b0111)}}));
  EXPECT_FALSE(evaluate(g, *lib::spanning_tree(),
                        {{"F", Value::edge_set(0b1111)}}));  // cycle
  EXPECT_FALSE(evaluate(g, *lib::spanning_tree(),
                        {{"F", Value::edge_set(0b0011)}}));  // not spanning
  EXPECT_TRUE(evaluate(g, *lib::spanning_connected(),
                       {{"F", Value::edge_set(0b1111)}}));
}

TEST(MsoEval, MatchingFormulas) {
  const Graph g = gen::path(4);  // edges 0:0-1, 1:1-2, 2:2-3
  EXPECT_TRUE(evaluate(g, *lib::matching(), {{"F", Value::edge_set(0b101)}}));
  EXPECT_FALSE(evaluate(g, *lib::matching(), {{"F", Value::edge_set(0b011)}}));
  EXPECT_TRUE(
      evaluate(g, *lib::perfect_matching(), {{"F", Value::edge_set(0b101)}}));
  EXPECT_FALSE(
      evaluate(g, *lib::perfect_matching(), {{"F", Value::edge_set(0b001)}}));
}

TEST(MsoEval, FeedbackVertexSet) {
  const Graph g = gen::cycle(4);
  EXPECT_TRUE(
      evaluate(g, *lib::feedback_vertex_set(), {{"S", Value::vertex_set(0b0001)}}));
  EXPECT_FALSE(
      evaluate(g, *lib::feedback_vertex_set(), {{"S", Value::vertex_set(0)}}));
}

TEST(MsoEval, LoweredFormulasAgreeWithSurface) {
  gen::Rng rng(9);
  const std::vector<FormulaPtr> closed = {
      lib::triangle_free(),  lib::connected(),
      lib::has_isolated_vertex(), lib::k_colorable(2),
      lib::acyclic()};
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::erdos_renyi(5, 0.4, rng);
    for (const auto& f : closed) {
      const auto low = lower(f);
      EXPECT_TRUE(is_lowered(*low));
      EXPECT_EQ(quantifier_rank(*low), quantifier_rank(*f));
      EXPECT_EQ(evaluate(g, *f), evaluate(g, *low)) << to_string(*f);
    }
  }
}

TEST(MsoEval, LoweredFreeVariableFormulasAgree) {
  gen::Rng rng(10);
  const Graph g = gen::erdos_renyi(5, 0.4, rng);
  const auto vc = lib::vertex_cover();
  const auto low = lower(vc, {{"S", Sort::VertexSet}});
  for (std::uint64_t mask = 0; mask < (1u << 5); ++mask) {
    Env env{{"S", Value::vertex_set(mask)}};
    EXPECT_EQ(evaluate(g, *vc, env), evaluate(g, *low, env));
  }
}

TEST(MsoEval, ErrorsOnUnboundVariable) {
  EXPECT_THROW(evaluate(gen::path(2), *adj("x", "y")), std::invalid_argument);
}

TEST(MsoEval, TriangleTupleCountsOrderedTriangles) {
  const Graph g = gen::clique(4);  // 4 triangles
  std::uint64_t count = 0;
  for (VertexId x = 0; x < 4; ++x)
    for (VertexId y = 0; y < 4; ++y)
      for (VertexId z = 0; z < 4; ++z) {
        Env env{{"X", Value::vertex_set(1ull << x)},
                {"Y", Value::vertex_set(1ull << y)},
                {"Z", Value::vertex_set(1ull << z)}};
        if (evaluate(g, *lib::triangle_tuple(), env)) ++count;
      }
  EXPECT_EQ(count, 6 * exact::count_triangles(g));
}

}  // namespace
}  // namespace dmc::mso
