#include "mso/parser.hpp"

#include <gtest/gtest.h>

#include "mso/ast.hpp"

namespace dmc::mso {
namespace {

TEST(MsoParser, Atoms) {
  EXPECT_EQ(parse("adj(x, y)")->kind, Kind::Adjacent);
  EXPECT_EQ(parse("inc(x, e)")->kind, Kind::Incident);
  EXPECT_EQ(parse("sub(X, Y)")->kind, Kind::Subset);
  EXPECT_EQ(parse("disj(X, Y)")->kind, Kind::Disjoint);
  EXPECT_EQ(parse("sing(X)")->kind, Kind::Singleton);
  EXPECT_EQ(parse("empty(X)")->kind, Kind::EmptySet);
  EXPECT_EQ(parse("full(X)")->kind, Kind::FullSet);
  EXPECT_EQ(parse("cross(F, X)")->kind, Kind::Crossing);
  EXPECT_EQ(parse("border(X)")->kind, Kind::Border);
  EXPECT_EQ(parse("label(red, x)")->kind, Kind::Label);
  EXPECT_EQ(parse("x = y")->kind, Kind::Equal);
  EXPECT_EQ(parse("x in X")->kind, Kind::Member);
  EXPECT_EQ(parse("true")->kind, Kind::True);
  EXPECT_EQ(parse("false")->kind, Kind::False);
}

TEST(MsoParser, NotEqualSugar) {
  const auto f = parse("x != y");
  EXPECT_EQ(f->kind, Kind::Not);
  EXPECT_EQ(f->left->kind, Kind::Equal);
}

TEST(MsoParser, Precedence) {
  // & binds tighter than |, which binds tighter than ->, then <->
  const auto f = parse("adj(a,b) | adj(c,d) & adj(e,g)");
  EXPECT_EQ(f->kind, Kind::Or);
  EXPECT_EQ(f->right->kind, Kind::And);
  const auto g = parse("adj(a,b) -> adj(c,d) | adj(e,g)");
  EXPECT_EQ(g->kind, Kind::Implies);
  EXPECT_EQ(g->right->kind, Kind::Or);
  const auto h = parse("adj(a,b) <-> adj(c,d) -> adj(e,g)");
  EXPECT_EQ(h->kind, Kind::Iff);
}

TEST(MsoParser, ImplicationIsRightAssociative) {
  const auto f = parse("adj(a,b) -> adj(c,d) -> adj(e,g)");
  EXPECT_EQ(f->kind, Kind::Implies);
  EXPECT_EQ(f->right->kind, Kind::Implies);
}

TEST(MsoParser, Quantifiers) {
  const auto f = parse("exists vertex x. forall vset X. x in X");
  EXPECT_EQ(f->kind, Kind::Exists);
  EXPECT_EQ(f->var_sort, Sort::Vertex);
  EXPECT_EQ(f->left->kind, Kind::Forall);
  EXPECT_EQ(f->left->var_sort, Sort::VertexSet);
}

TEST(MsoParser, QuantifierBindingList) {
  const auto f = parse("exists vertex x, y, edge e. inc(x, e)");
  EXPECT_EQ(f->kind, Kind::Exists);
  EXPECT_EQ(f->var, "x");
  EXPECT_EQ(f->var_sort, Sort::Vertex);
  EXPECT_EQ(f->left->var, "y");
  EXPECT_EQ(f->left->var_sort, Sort::Vertex);
  EXPECT_EQ(f->left->left->var, "e");
  EXPECT_EQ(f->left->left->var_sort, Sort::Edge);
}

TEST(MsoParser, QuantifierBodyExtendsRight) {
  const auto f = parse("exists vertex x. adj(x, y) & adj(x, z)");
  EXPECT_EQ(f->kind, Kind::Exists);
  EXPECT_EQ(f->left->kind, Kind::And);
}

TEST(MsoParser, ParenthesesOverridePrecedence) {
  const auto f = parse("(adj(a,b) | adj(c,d)) & adj(e,g)");
  EXPECT_EQ(f->kind, Kind::And);
}

TEST(MsoParser, NegationVariants) {
  EXPECT_EQ(parse("!adj(x,y)")->kind, Kind::Not);
  EXPECT_EQ(parse("~adj(x,y)")->kind, Kind::Not);
  EXPECT_EQ(parse("not adj(x,y)")->kind, Kind::Not);
}

TEST(MsoParser, RoundTripThroughToString) {
  const char* inputs[] = {
      "exists vertex x. forall vertex y. !(adj(x, y))",
      "forall vset X. ((empty(X) | full(X)) | border(X))",
      "exists eset F. (cross(F, X) & sub(F, G))",
  };
  for (const char* text : inputs) {
    const auto f = parse(text);
    const auto g = parse(to_string(*f));
    EXPECT_EQ(to_string(*f), to_string(*g)) << text;
  }
}

TEST(MsoParser, Errors) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("adj(x"), std::invalid_argument);
  EXPECT_THROW(parse("adj(x,y) adj(y,z)"), std::invalid_argument);
  EXPECT_THROW(parse("exists x. adj(x,x)"), std::invalid_argument);  // no sort
  EXPECT_THROW(parse("@"), std::invalid_argument);
  EXPECT_THROW(parse("x"), std::invalid_argument);
}

TEST(MsoParser, ParsedFormulasAreWellFormed) {
  const auto f = parse(
      "forall vset X. (empty(X) | full(X) | border(X))");
  EXPECT_NO_THROW(check_well_formed(*f));
  EXPECT_EQ(quantifier_rank(*f), 1);
}

}  // namespace
}  // namespace dmc::mso
