// The gluing algebra on *non-canonical* tree decompositions: path
// decompositions and hand-built decompositions exercise terminal
// forgetting much harder than the canonical (nested-bag) ones.
#include <gtest/gtest.h>

#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"

namespace dmc {
namespace {

using mso::Sort;
namespace lib = mso::lib;

/// Path decomposition of P_n / C_n style graphs: bags {i, i+1}.
TreeDecomposition path_decomposition(int n) {
  TreeDecomposition td;
  for (int i = 0; i + 1 < n; ++i) {
    td.parent.push_back(i - 1);
    td.bags.push_back({i, i + 1});
  }
  if (n == 1) {
    td.parent = {-1};
    td.bags = {{0}};
  }
  return td;
}

bool decide_on(const Graph& g, const TreeDecomposition& td,
               const mso::FormulaPtr& f) {
  const auto lowered = mso::lower(f);
  bpt::Engine engine(bpt::config_for(*lowered));
  const auto plan = bpt::build_global_plan(g, td);
  const auto root = bpt::fold_type(engine, plan, g);
  bpt::Evaluator eval(engine, lowered);
  return eval.eval(root);
}

TEST(NonCanonical, PathDecompositionDecision) {
  for (int n : {2, 5, 9}) {
    const Graph g = gen::path(n);
    const auto td = path_decomposition(n);
    ASSERT_TRUE(td.valid_for(g));
    EXPECT_TRUE(decide_on(g, td, lib::connected()));
    EXPECT_TRUE(decide_on(g, td, lib::acyclic()));
    EXPECT_TRUE(decide_on(g, td, lib::triangle_free()));
    EXPECT_FALSE(decide_on(g, td, lib::has_isolated_vertex_lowrank()));
  }
}

TEST(NonCanonical, HandBuiltDecompositionMatchesBruteForce) {
  // The "bull": triangle 0-1-2 with pendant horns 3 (on 1) and 4 (on 2).
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  TreeDecomposition td;
  td.parent = {-1, 0, 0};
  td.bags = {{0, 1, 2}, {1, 3}, {2, 4}};
  ASSERT_TRUE(td.valid_for(g));
  for (const auto& f : {lib::triangle_free(), lib::connected(),
                        lib::k_colorable(2), lib::k_colorable(3),
                        lib::has_isolated_vertex_lowrank()}) {
    EXPECT_EQ(decide_on(g, td, f), mso::evaluate(g, *f)) << mso::to_string(*f);
  }
}

TEST(NonCanonical, OptimizationOnPathDecomposition) {
  const int n = 12;
  const Graph g = gen::path(n);
  const auto td = path_decomposition(n);
  const std::vector<std::pair<std::string, Sort>> frees{{"S", Sort::VertexSet}};
  const auto lowered = mso::lower(lib::independent_set(), frees);
  bpt::Engine engine(bpt::config_for(*lowered, frees));
  const auto plan = bpt::build_global_plan(g, td);
  bpt::OptSolver solver(engine, plan, g);
  bpt::Evaluator eval(engine, lowered, frees);
  Weight best = -1;
  for (const auto& [c, w] : solver.root_table())
    if (eval.eval(c)) best = std::max(best, w);
  EXPECT_EQ(best, (n + 1) / 2);
}

TEST(NonCanonical, CountingOnPathDecomposition) {
  const int n = 10;
  const Graph g = gen::path(n);
  const auto td = path_decomposition(n);
  const std::vector<std::pair<std::string, Sort>> frees{{"S", Sort::VertexSet}};
  const auto lowered = mso::lower(lib::independent_set_indicator(), frees);
  bpt::Engine engine(bpt::config_for(*lowered, frees));
  const auto plan = bpt::build_global_plan(g, td);
  const auto tables = bpt::fold_count(engine, plan, g);
  bpt::Evaluator eval(engine, lowered, frees);
  std::uint64_t total = 0;
  for (const auto& [c, cnt] : tables[plan.root])
    if (eval.eval(c)) total += cnt;
  EXPECT_EQ(total, exact::count_independent_sets(g));
}

TEST(NonCanonical, DisconnectedGraphsViaMultiRootDecompositions) {
  const Graph g = gen::disjoint_union(gen::cycle(3), gen::path(3));
  TreeDecomposition td;
  // component 1: triangle bag; component 2: two bags
  td.parent = {-1, -1, 1};
  td.bags = {{0, 1, 2}, {3, 4}, {4, 5}};
  ASSERT_TRUE(td.valid_for(g));
  EXPECT_FALSE(decide_on(g, td, lib::connected()));
  EXPECT_FALSE(decide_on(g, td, lib::triangle_free()));
  EXPECT_FALSE(decide_on(g, td, lib::acyclic()));
  EXPECT_TRUE(decide_on(g, td, lib::k_colorable(3)));
}

}  // namespace
}  // namespace dmc
