#include "mso/normalize.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "mso/parser.hpp"

namespace dmc::mso {
namespace {

bool no_nnf_violations(const Formula& f) {
  if (f.kind == Kind::Implies || f.kind == Kind::Iff) return false;
  if (f.kind == Kind::Not && !is_atomic(f.left->kind)) return false;
  if (f.left && !no_nnf_violations(*f.left)) return false;
  if (f.right && !no_nnf_violations(*f.right)) return false;
  return true;
}

TEST(Normalize, NnfShape) {
  const auto f = parse(
      "!(adj(x,y) -> (sing(X) <-> exists vertex z. adj(z,z)))");
  const auto n = to_nnf(f);
  EXPECT_TRUE(no_nnf_violations(*n));
}

TEST(Normalize, NnfDualizesQuantifiers) {
  const auto f = lnot(exists("x", Sort::Vertex, adj("x", "x")));
  const auto n = to_nnf(f);
  EXPECT_EQ(n->kind, Kind::Forall);
  EXPECT_EQ(n->left->kind, Kind::Not);
}

TEST(Normalize, NnfPreservesQuantifierRank) {
  const std::vector<FormulaPtr> fs = {
      lib::triangle_free(), lib::acyclic(), lib::connected(),
      lib::k_colorable(2), lib::has_isolated_vertex()};
  for (const auto& f : fs)
    EXPECT_EQ(quantifier_rank(*to_nnf(f)), quantifier_rank(*f));
}

TEST(Normalize, NnfPreservesSemantics) {
  gen::Rng rng(3);
  const std::vector<FormulaPtr> fs = {
      lib::triangle_free(), lib::connected(), lib::has_isolated_vertex(),
      lib::k_colorable(2),
      parse("forall vertex x. adj(x,x) <-> exists vertex y. y = x")};
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = gen::random_connected(6, 3, rng);
    for (const auto& f : fs)
      EXPECT_EQ(evaluate(g, *f), evaluate(g, *to_nnf(f))) << to_string(*f);
  }
}

TEST(Normalize, FoldConstants) {
  EXPECT_EQ(fold_constants(land(f_true(), adj("x", "y")))->kind,
            Kind::Adjacent);
  EXPECT_EQ(fold_constants(land(f_false(), adj("x", "y")))->kind, Kind::False);
  EXPECT_EQ(fold_constants(lor(f_true(), adj("x", "y")))->kind, Kind::True);
  EXPECT_EQ(fold_constants(lnot(f_true()))->kind, Kind::False);
  EXPECT_EQ(fold_constants(implies(f_false(), adj("x", "y")))->kind,
            Kind::True);
  EXPECT_EQ(fold_constants(iff(f_true(), adj("x", "y")))->kind,
            Kind::Adjacent);
  // set quantifier over a constant body folds away
  EXPECT_EQ(fold_constants(exists("X", Sort::VertexSet, f_true()))->kind,
            Kind::True);
}

TEST(Normalize, SizeAndQuantifierCount) {
  const auto f = exists(
      "x", Sort::Vertex,
      land(adj("x", "x"), forall("y", Sort::Vertex, adj("x", "y"))));
  EXPECT_EQ(formula_size(*f), 5);
  EXPECT_EQ(count_quantifiers(*f), 2);
  EXPECT_EQ(quantifier_rank(*f), 2);
}

TEST(Normalize, NormalizeIdempotentOnLibrary) {
  for (const auto& f :
       {lib::triangle_free(), lib::connected(), lib::acyclic()}) {
    const auto once = normalize(f);
    const auto twice = normalize(once);
    EXPECT_EQ(to_string(*once), to_string(*twice));
  }
}

}  // namespace
}  // namespace dmc::mso
