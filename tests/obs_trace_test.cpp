// Tests for dmc::obs — the round-level tracing subsystem.
//
// The pinned invariants:
//   - summing a trace's per-round deltas reproduces NetworkStats exactly;
//   - traces are deterministic for a fixed id_seed;
//   - the JSONL and Chrome exporters emit structurally valid output;
//   - phase spans nest and close (LIFO, balanced, annotations dedup);
//   - with no sink configured, Network::run() performs no allocation
//     (the zero-overhead-when-disabled contract).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <vector>

#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "obs/buffer.hpp"
#include "obs/chrome.hpp"
#include "obs/jsonl.hpp"
#include "obs/summary.hpp"

// Global allocation counter for the disabled-path test. Counting is always
// on (cheap, relaxed atomic); the test reads the counter around run().
namespace {
std::atomic<long> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The replaced operator new above allocates with malloc, so freeing with
// free() is the matching deallocation; GCC cannot see the pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace dmc {
namespace {

using congest::Network;
using congest::NetworkConfig;
using congest::NodeCtx;
using congest::NodeProgram;

/// Runs the full decision pipeline on a small path with the given sink.
long run_traced_decision(obs::TraceSink* sink, std::uint64_t id_seed = 42) {
  const Graph g = gen::path(8);
  NetworkConfig cfg;
  cfg.id_seed = id_seed;
  cfg.sink = sink;
  Network net(g, cfg);
  const auto out = dist::run_decision(net, mso::lib::connected(), 4);
  EXPECT_FALSE(out.treedepth_exceeded);
  EXPECT_TRUE(out.holds);
  return net.stats().rounds;
}

TEST(ObsTrace, RoundDeltasSumExactlyToNetworkStats) {
  obs::TraceBuffer buffer;
  const Graph g = gen::path(8);
  NetworkConfig cfg;
  cfg.id_seed = 42;
  cfg.sink = &buffer;
  Network net(g, cfg);
  const auto out = dist::run_decision(net, mso::lib::connected(), 4);
  ASSERT_FALSE(out.treedepth_exceeded);

  long rounds = 0, messages = 0;
  long long bits = 0;
  int max_bits = 0;
  for (const auto& ev : buffer.rounds()) {
    ++rounds;
    messages += ev.messages;
    bits += ev.bits;
    max_bits = std::max(max_bits, ev.max_message_bits);
    EXPECT_EQ(ev.active_nodes + ev.done_nodes, 8);
  }
  const auto& stats = net.stats();
  EXPECT_EQ(rounds, stats.rounds);
  EXPECT_EQ(messages, stats.messages);
  EXPECT_EQ(bits, stats.total_bits);
  EXPECT_EQ(max_bits, stats.max_message_bits);
  // Round indices are consecutive across the pipeline's runs.
  for (std::size_t i = 0; i < buffer.rounds().size(); ++i)
    EXPECT_EQ(buffer.rounds()[i].round, static_cast<long>(i));
  // One run_begin per Network::run() call, each matched by a run_end.
  EXPECT_GE(buffer.num_runs(), 3);  // elim-tree, bags, decide at minimum
}

TEST(ObsTrace, SummaryTotalsMatchNetworkStatsAndBalance) {
  obs::TraceBuffer buffer;
  const Graph g = gen::path(8);
  NetworkConfig cfg;
  cfg.sink = &buffer;
  Network net(g, cfg);
  const auto out = dist::run_decision(net, mso::lib::connected(), 4);
  ASSERT_FALSE(out.treedepth_exceeded);

  const obs::Summary s = obs::summarize(buffer);
  EXPECT_TRUE(s.balanced);
  EXPECT_EQ(s.total_rounds, net.stats().rounds);
  EXPECT_EQ(s.total_messages, net.stats().messages);
  EXPECT_EQ(s.total_bits, net.stats().total_bits);
  EXPECT_EQ(s.max_message_bits, net.stats().max_message_bits);
  // Per-phase rows partition the totals.
  long phase_rounds = 0, phase_messages = 0;
  long long phase_bits = 0;
  for (const auto& p : s.phases) {
    phase_rounds += p.rounds;
    phase_messages += p.messages;
    phase_bits += p.bits;
  }
  EXPECT_EQ(phase_rounds, s.total_rounds);
  EXPECT_EQ(phase_messages, s.total_messages);
  EXPECT_EQ(phase_bits, s.total_bits);
  // The driver phases of the decision pipeline all appear.
  EXPECT_NE(s.aggregate("elim-tree").rounds, 0);
  EXPECT_NE(s.aggregate("bags").rounds, 0);
  EXPECT_NE(s.aggregate("decide").rounds, 0);
  // aggregate() sums exactly the nested annotation rows.
  const auto elim = s.aggregate("elim-tree");
  long nested = 0;
  for (const auto& p : s.phases)
    if (p.path.rfind("elim-tree", 0) == 0) nested += p.rounds;
  EXPECT_EQ(elim.rounds, nested);
}

TEST(ObsTrace, DeterministicForFixedIdSeed) {
  std::ostringstream a, b;
  {
    obs::JsonlExporter exporter(a);
    run_traced_decision(&exporter, 7);
  }
  {
    obs::JsonlExporter exporter(b);
    run_traced_decision(&exporter, 7);
  }
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
}

TEST(ObsTrace, JsonlLinesAreSelfDescribing) {
  std::ostringstream out;
  obs::JsonlExporter exporter(out);
  const long rounds = run_traced_decision(&exporter);

  std::istringstream in(out.str());
  std::string line;
  long round_lines = 0, run_begins = 0, run_ends = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\""), std::string::npos) << line;
    if (line.find("\"type\":\"round\"") != std::string::npos) ++round_lines;
    if (line.find("\"type\":\"run_begin\"") != std::string::npos) ++run_begins;
    if (line.find("\"type\":\"run_end\"") != std::string::npos) ++run_ends;
  }
  EXPECT_EQ(round_lines, rounds);
  EXPECT_GT(run_begins, 0);
  EXPECT_EQ(run_begins, run_ends);
}

TEST(ObsTrace, ChromeTraceIsStructurallyValidJson) {
  std::ostringstream out;
  {
    obs::ChromeTraceExporter exporter(out);
    run_traced_decision(&exporter);
    exporter.close();
    exporter.close();  // idempotent
  }
  const std::string s = out.str();
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  // Trailer closes the array and the root object.
  EXPECT_NE(s.rfind("]}"), std::string::npos);
  // Balanced braces/brackets (no strings in the output contain them).
  long braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Every duration begin has a matching end.
  auto count = [&s](const char* needle) {
    long c = 0;
    for (std::size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + 1))
      ++c;
    return c;
  };
  EXPECT_GT(count("\"ph\":\"B\""), 0);
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_GT(count("\"ph\":\"C\""), 0);
}

TEST(ObsTrace, ChromeExporterRejectsEventsAfterClose) {
  std::ostringstream out;
  obs::ChromeTraceExporter exporter(out);
  exporter.close();
  obs::RoundEvent ev;
  EXPECT_THROW(exporter.round(ev), std::logic_error);
}

TEST(ObsTrace, PhaseSpansNestAndClose) {
  obs::TraceBuffer buffer;
  const Graph g = gen::path(8);
  NetworkConfig cfg;
  cfg.sink = &buffer;
  Network net(g, cfg);
  const auto out = dist::run_decision(net, mso::lib::connected(), 4);
  ASSERT_FALSE(out.treedepth_exceeded);

  // Replay: every End matches the innermost open Begin, depths agree with
  // the stack, and the stream ends with an empty stack.
  std::vector<std::string> stack;
  for (const auto& ev : buffer.phases()) {
    if (ev.kind == obs::PhaseEvent::Kind::Begin) {
      EXPECT_EQ(ev.depth, static_cast<int>(stack.size()));
      stack.push_back(ev.name);
    } else {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(ev.name, stack.back());
      EXPECT_EQ(ev.depth, static_cast<int>(stack.size()) - 1);
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());
}

TEST(ObsTrace, AnnotationsDeduplicateAcrossNodes) {
  // Every node annotates the same step name every round; the network must
  // record a single span, not n per-node or per-round copies.
  class Annotating : public NodeProgram {
   public:
    void on_round(NodeCtx& ctx) override {
      ASSERT_TRUE(ctx.traced());
      ctx.annotate(ctx.round() < 2 ? "step-a" : "step-b");
    }
    bool done(const NodeCtx& ctx) const override { return ctx.round() >= 4; }
  };
  obs::TraceBuffer buffer;
  const Graph g = gen::cycle(6);
  NetworkConfig cfg;
  cfg.sink = &buffer;
  Network net(g, cfg);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 6; ++v) programs.push_back(std::make_unique<Annotating>());
  net.run(programs);

  int begins_a = 0, begins_b = 0;
  for (const auto& ev : buffer.phases())
    if (ev.kind == obs::PhaseEvent::Kind::Begin) {
      if (ev.name == "step-a") ++begins_a;
      if (ev.name == "step-b") ++begins_b;
    }
  EXPECT_EQ(begins_a, 1);
  EXPECT_EQ(begins_b, 1);
  // The run's end closed the trailing annotation.
  const obs::Summary s = obs::summarize(buffer);
  EXPECT_TRUE(s.balanced);
}

TEST(ObsTrace, PhaseEndWithoutBeginThrows) {
  obs::TraceBuffer buffer;
  NetworkConfig cfg;
  cfg.sink = &buffer;
  Network net(gen::path(2), cfg);
  EXPECT_THROW(net.phase_end(), std::logic_error);
}

TEST(ObsTrace, UntracedNetworkIgnoresPhaseApi) {
  Network net(gen::path(2));
  EXPECT_FALSE(net.traced());
  // All tracing entry points are no-ops without a sink.
  net.phase_begin("ignored");
  net.phase_end();  // would throw if the span stack were maintained
  net.annotate("ignored");
}

TEST(ObsTrace, TeeSinkFansOutToAllSinks) {
  obs::TraceBuffer a, b;
  obs::TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  tee.add(nullptr);  // ignored
  run_traced_decision(&tee);
  EXPECT_FALSE(a.items().empty());
  EXPECT_EQ(a.items().size(), b.items().size());
  EXPECT_EQ(a.rounds().size(), b.rounds().size());
  EXPECT_EQ(a.num_runs(), b.num_runs());
}

TEST(ObsTrace, DisabledPathDoesNotAllocatePerRound) {
  // A program that sends nothing: with no sink, run() must not allocate at
  // all (the tracing branches are fully skipped, inboxes are pre-sized).
  class Quiet : public NodeProgram {
   public:
    void on_round(NodeCtx&) override {}
    bool done(const NodeCtx& ctx) const override { return ctx.round() >= 64; }
  };
  const Graph g = gen::cycle(8);
  Network net(g);  // no sink
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (int v = 0; v < 8; ++v) programs.push_back(std::make_unique<Quiet>());

  const long before = g_allocations.load(std::memory_order_relaxed);
  const long rounds = net.run(programs);
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GE(rounds, 64);
  EXPECT_EQ(after - before, 0)
      << "untraced Network::run() allocated " << (after - before)
      << " times over " << rounds << " rounds";
}

TEST(ObsTrace, CurveTableRendersSeriesByX) {
  obs::CurveTable curve;
  curve.add("alpha", 2, 1.5);
  curve.add("beta", 2, 2.5);
  curve.add("alpha", 1, 0.5);
  const std::string s = curve.format("n");
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  // Row x=1 precedes row x=2; beta has no x=1 point -> "-".
  EXPECT_LT(s.find("0.50"), s.find("1.50"));
  EXPECT_NE(s.find('-'), std::string::npos);
}

}  // namespace
}  // namespace dmc
