// Tests for the obs v2 additions: the clock seam, query spans, the
// atomic file writer, the flight recorder, and trace coalescing.
//
// The pinned invariants:
//   - obs::now_ms()/now_us() honor the test override and restore cleanly;
//   - SpanLog builds a parent-linked timeline and exports valid JSON;
//   - write_file_atomic leaves either the old content or the new, never a
//     torn file, and reports failures with a reason;
//   - the flight recorder keeps exactly the last `capacity` events
//     (oldest first) and its crash-run dump names the crashed node and
//     round — the "exit 7 comes with a story" acceptance criterion;
//   - a traced sparse run coalesces quiescent stretches into
//     QuiescentEvents whose expansion reproduces the dense per-phase
//     totals exactly, across thread counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "obs/atomic_file.hpp"
#include "obs/buffer.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/spans.hpp"
#include "obs/summary.hpp"

namespace dmc {
namespace {

namespace fs = std::filesystem;
namespace lib = mso::lib;

// --- clock seam ---------------------------------------------------------------

TEST(ObsClock, FakeOverrideAndRestore) {
  obs::set_now_ms_for_test(1234);
  EXPECT_EQ(obs::now_ms(), 1234);
  EXPECT_EQ(obs::now_us(), 1234000);
  obs::set_now_ms_for_test(9);
  EXPECT_EQ(obs::now_ms(), 9);
  obs::set_now_ms_for_test(-1);  // back to the real monotonic clock
  const long long a = obs::now_ms();
  const long long b = obs::now_ms();
  EXPECT_LE(a, b) << "real clock must be monotonic";
}

// --- query spans --------------------------------------------------------------

TEST(ObsSpans, TreeTimelineAndJson) {
  obs::set_now_ms_for_test(100);
  obs::SpanLog log("q42");
  const int root = log.open("query");
  const int queue = log.open_at("queue", 100, root);
  obs::set_now_ms_for_test(130);
  log.close(queue);
  const int exec = log.open("exec", root);
  obs::set_now_ms_for_test(180);
  log.close_at(exec, 175);
  log.close(root);
  obs::set_now_ms_for_test(-1);

  ASSERT_EQ(log.spans().size(), 3u);
  EXPECT_EQ(log.spans()[root].parent, -1);
  EXPECT_EQ(log.spans()[queue].parent, root);
  EXPECT_EQ(log.duration_ms("queue"), 30);
  EXPECT_EQ(log.duration_ms("exec"), 45);
  EXPECT_EQ(log.duration_ms("query"), 80);
  EXPECT_EQ(log.find("missing"), nullptr);

  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"id\":\"q42\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur_ms\":30"), std::string::npos) << json;
  const std::string chrome = log.to_chrome_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos) << chrome;
}

TEST(ObsSpans, CloseTwiceKeepsFirstStamp) {
  obs::set_now_ms_for_test(10);
  obs::SpanLog log("q");
  const int s = log.open("exec");
  obs::set_now_ms_for_test(25);
  log.close(s);
  obs::set_now_ms_for_test(900);
  log.close(s);  // must be a no-op
  obs::set_now_ms_for_test(-1);
  EXPECT_EQ(log.duration_ms("exec"), 15);
}

// --- atomic file writer -------------------------------------------------------

TEST(ObsAtomicFile, WriteOverwriteAndFailure) {
  const fs::path dir = fs::temp_directory_path() / "dmc_obs_v2_atomic";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "out.txt").string();

  std::string err;
  ASSERT_TRUE(obs::write_file_atomic(path, "first\n", &err)) << err;
  {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "first\n");
  }
  ASSERT_TRUE(obs::write_file_atomic(path, "second\n", &err)) << err;
  {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "second\n");
  }
  // No leftover temp files after successful writes.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  err.clear();
  EXPECT_FALSE(obs::write_file_atomic(
      (dir / "no_such_subdir" / "x.txt").string(), "x", &err));
  EXPECT_FALSE(err.empty()) << "failure must carry a reason";
  fs::remove_all(dir);
}

// --- flight recorder: ring semantics ------------------------------------------

TEST(FlightRecorder, RingKeepsLastEventsOldestFirst) {
  obs::FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (int i = 1; i <= 10; ++i) rec.note(i, "tick");
  EXPECT_EQ(rec.recorded(), 10u);
  const auto entries = rec.snapshot();
  ASSERT_EQ(entries.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(entries[i].kind, obs::FlightRecorder::Kind::Note);
    EXPECT_EQ(entries[i].round, 7 + i) << "oldest retained must be #7";
  }
  const std::string dump = rec.dump_string();
  EXPECT_NE(dump.find("\"type\":\"flight_header\""), std::string::npos);
  EXPECT_NE(dump.find("\"recorded\":10"), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":6"), std::string::npos);

  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, LongLabelsTruncateSafely) {
  obs::FlightRecorder rec(2);
  rec.note(1, "this label is much longer than the fixed 24-byte slot");
  const auto entries = rec.snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const std::string label = entries[0].label;
  EXPECT_LT(label.size(), 24u);
  EXPECT_EQ(label.rfind("this label", 0), 0u);
}

// --- flight recorder: degraded-run post-mortem (acceptance criterion) ---------

TEST(FlightRecorder, CrashRunDumpNamesCrashedNodeAndRound) {
  gen::Rng rng(3);
  const Graph g = gen::random_bounded_treedepth(24, 3, 0.4, rng);
  congest::NetworkConfig cfg;
  cfg.id_seed = 3;
  cfg.faults = congest::parse_fault_plan("crash=2@r25,seed=7");
  congest::Network net(g, cfg);
  const auto out = dist::run_decision(net, lib::triangle_free(), 3);
  ASSERT_FALSE(out.run.ok());
  ASSERT_EQ(out.run.status, congest::RunStatus::kCrashed);
  ASSERT_EQ(out.run.crashed.size(), 1u);

  // The always-on ring must hold the crash among its final events, with
  // the crashed node's id and the round it died at.
  const auto entries = net.flight_recorder().snapshot();
  ASSERT_FALSE(entries.empty());
  bool found = false;
  for (const auto& e : entries) {
    if (e.kind != obs::FlightRecorder::Kind::Fault) continue;
    if (std::string(e.label) != "crash") continue;
    found = true;
    EXPECT_EQ(e.c, out.run.crashed[0]) << "fault entry must name the node";
    EXPECT_EQ(e.round, 25) << "fault entry must name the round";
  }
  EXPECT_TRUE(found) << "no crash fault retained in the ring";

  const std::string dump = net.flight_recorder().dump_string();
  EXPECT_NE(dump.find("\"type\":\"fault\",\"kind\":\"crash\""),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"round\":25"), std::string::npos) << dump;
}

// --- coalesced quiescence: traced sparse == dense, totals exact ---------------

/// Runs the deep-path decision pipeline (quiescence-heavy: change-only
/// flooding puts long path stretches to sleep) into a fresh TraceBuffer.
struct CoalescedRun {
  obs::TraceBuffer buffer;
  congest::NetworkStats stats;
  bool holds = false;
};

CoalescedRun run_deeppath(bool sparse, int threads) {
  CoalescedRun out;
  const Graph g = gen::deeppath(400, 4);
  congest::NetworkConfig cfg;
  cfg.id_seed = 7;
  cfg.sink = &out.buffer;
  cfg.sparse_stepping = sparse;
  cfg.threads = threads;
  congest::Network net(g, cfg);
  // Change-only flooding on in BOTH runs: it is what quiets the election
  // enough to fast-forward, and it alters the message stream (that is its
  // point), so only the scheduler may vary between the compared runs.
  dist::ElimTreeOptions opts;
  opts.sparse_flood = true;
  const auto result =
      dist::run_decision(net, lib::triangle_free(), 4, nullptr, opts);
  EXPECT_TRUE(result.run.ok());
  out.stats = net.stats();
  out.holds = result.holds;
  return out;
}

TEST(ObsCoalescing, SparseTraceCoalescesAndExpandsToDenseTotals) {
  const CoalescedRun dense = run_deeppath(/*sparse=*/false, /*threads=*/1);
  EXPECT_TRUE(dense.buffer.quiescents().empty())
      << "dense stepping must emit every round";

  for (int threads : {1, 4}) {
    const CoalescedRun sparse = run_deeppath(/*sparse=*/true, threads);
    EXPECT_EQ(sparse.holds, dense.holds);
    EXPECT_EQ(sparse.stats.rounds, dense.stats.rounds);

    // The fast-forward guard must stay engaged with a sink attached: the
    // quiet stretches arrive coalesced, not one RoundEvent each.
    EXPECT_FALSE(sparse.buffer.quiescents().empty()) << "threads=" << threads;
    long expanded = static_cast<long>(sparse.buffer.rounds().size());
    for (const auto& q : sparse.buffer.quiescents()) {
      EXPECT_GE(q.skipped_rounds, 1);
      expanded += q.skipped_rounds;
    }
    EXPECT_EQ(expanded, dense.stats.rounds)
        << "rounds + skipped stretches must cover the whole run";

    // Per-phase totals after expanding QuiescentEvents: identical to the
    // dense trace at driver-phase granularity, and both NetworkStats-
    // exact. Annotation subpaths ("elim-tree/election" vs ".../report")
    // legitimately differ — a dense-stepped node annotates even rounds
    // where it has nothing to do, rounds sparse stepping never executes —
    // so the comparison aggregates each top-level phase span.
    const obs::Summary ds = obs::summarize(dense.buffer);
    const obs::Summary ss = obs::summarize(sparse.buffer);
    EXPECT_EQ(ds.total_rounds, dense.stats.rounds);
    EXPECT_EQ(ss.total_rounds, sparse.stats.rounds);
    EXPECT_EQ(ss.total_messages, ds.total_messages);
    EXPECT_EQ(ss.total_bits, ds.total_bits);
    EXPECT_TRUE(ss.balanced);
    std::set<std::string> phases;
    for (const auto& p : ds.phases)
      phases.insert(p.path.substr(0, p.path.find('/')));
    EXPECT_GE(phases.size(), 2u) << "pipeline must expose several phases";
    for (const std::string& phase : phases) {
      const obs::PhaseTotals d = ds.aggregate(phase);
      const obs::PhaseTotals s = ss.aggregate(phase);
      EXPECT_EQ(s.rounds, d.rounds) << phase << " threads=" << threads;
      EXPECT_EQ(s.messages, d.messages) << phase << " threads=" << threads;
      EXPECT_EQ(s.bits, d.bits) << phase << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dmc
