// Determinism of the parallel engine (src/par + the threaded fold and
// simulator paths): verdicts AND round-digest streams must be identical
// across --threads 1/2/8 for all four pipelines, and the pool itself must
// survive exceptions, nesting, and uneven workloads. These tests carry the
// `par` ctest label so CI can run them standalone under TSan (-L par).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "congest/conformance.hpp"
#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/hfreeness.hpp"
#include "dist/optimization.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "par/chunked.hpp"
#include "par/pool.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

namespace lib = mso::lib;
using mso::Sort;

// --- the pool ----------------------------------------------------------------

TEST(ParPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(1000);
    par::parallel_for(threads, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParPool, PropagatesFirstException) {
  EXPECT_THROW(par::parallel_for(8, 100,
                                 [&](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> sum{0};
  par::parallel_for(8, 10, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParPool, NestedParallelForRunsInline) {
  std::atomic<int> total{0};
  par::parallel_for(4, 8, [&](std::size_t) {
    EXPECT_TRUE(par::in_parallel_region());
    // Nested call must not deadlock; it degrades to a serial loop.
    par::parallel_for(4, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(par::in_parallel_region());
}

TEST(ParPool, AtomicMaxAndAdd) {
  int max_val = 0;
  long long sum = 0;
  par::parallel_for(8, 100, [&](std::size_t i) {
    par::atomic_fetch_max(max_val, static_cast<int>(i));
    par::atomic_fetch_add(sum, 1LL);
  });
  EXPECT_EQ(max_val, 99);
  EXPECT_EQ(sum, 100);
}

TEST(ParChunkedVector, PushAndReadAcrossChunkBoundaries) {
  par::ChunkedVector<int> v;
  const std::size_t n = 20000;  // spans multiple 8192-element chunks
  for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<int>(i));
  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 0; i < n; i += 997) EXPECT_EQ(v[i], static_cast<int>(i));
  par::ChunkedVector<int> copy(v);
  EXPECT_EQ(copy.size(), n);
  EXPECT_EQ(copy[n - 1], static_cast<int>(n - 1));
}

// --- pipeline determinism across thread counts -------------------------------

Graph btd_graph(unsigned seed, int n = 24, int d = 3) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, 0.4, rng);
}

struct DigestRun {
  std::vector<std::uint64_t> digests;
  std::string verdict;
};

template <typename Fn>
DigestRun digest_run(const Graph& g, int threads, Fn&& protocol) {
  audit::RoundDigestSink sink;
  congest::NetworkConfig cfg;
  cfg.sink = &sink;
  cfg.threads = threads;
  congest::Network net(g, cfg);
  DigestRun out;
  out.verdict = protocol(net);
  out.digests = sink.digests();
  return out;
}

template <typename Fn>
void expect_thread_invariant(const Graph& g, Fn&& protocol) {
  const DigestRun serial = digest_run(g, 1, protocol);
  for (int threads : {2, 8}) {
    const DigestRun run = digest_run(g, threads, protocol);
    EXPECT_EQ(run.verdict, serial.verdict) << "threads=" << threads;
    EXPECT_EQ(run.digests, serial.digests) << "threads=" << threads;
  }
}

TEST(ParDeterminism, DecisionDigestsThreadInvariant) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    expect_thread_invariant(btd_graph(seed), [](congest::Network& net) {
      const auto out = dist::run_decision(net, lib::triangle_free(), 3);
      return std::string(out.holds ? "holds" : "fails");
    });
  }
}

TEST(ParDeterminism, OptimizationDigestsThreadInvariant) {
  expect_thread_invariant(btd_graph(1), [](congest::Network& net) {
    const auto out =
        dist::run_minimize(net, lib::dominating_set(), "S", Sort::VertexSet, 3);
    if (!out.best_weight) return std::string("infeasible");
    return "optimum=" + std::to_string(*out.best_weight);
  });
}

TEST(ParDeterminism, CountingDigestsThreadInvariant) {
  expect_thread_invariant(btd_graph(2, 16), [](congest::Network& net) {
    const auto out = dist::run_count(
        net, lib::independent_set(), {{"S", Sort::VertexSet}}, 3);
    return "count=" + std::to_string(out.count);
  });
}

TEST(ParDeterminism, HFreenessStepDigestsThreadInvariant) {
  // Within-run stepping parallelism (NetworkConfig::threads) must keep the
  // sweep's digest stream identical; one shared sink spans all runs.
  const Graph g = gen::grid(5, 5);
  const Graph triangle = gen::clique(3);
  std::vector<std::uint64_t> serial;
  bool serial_free = false;
  for (int threads : {1, 2, 8}) {
    audit::RoundDigestSink sink;
    congest::NetworkConfig cfg;
    cfg.sink = &sink;
    cfg.threads = threads;
    const auto out = dist::run_h_freeness_grid(g, 5, 5, triangle, 4, cfg);
    if (threads == 1) {
      serial = sink.digests();
      serial_free = out.h_free;
    } else {
      EXPECT_EQ(sink.digests(), serial) << "threads=" << threads;
      EXPECT_EQ(out.h_free, serial_free);
    }
  }
}

TEST(ParDeterminism, HFreenessSweepVerdictMatchesSerial) {
  // Cross-subset sweep parallelism is verdict-identical (per-task universe
  // copies make digests incomparable, so only verdict fields are checked).
  const Graph triangle = gen::clique(3);
  for (int extra : {0, 4}) {
    gen::Rng rng(static_cast<unsigned>(50 + extra));
    const Graph g = gen::perturbed_grid(5, 5, extra, rng);
    dist::HFreenessOptions serial_opts;  // sweep_threads = 1
    const auto serial = dist::run_h_freeness_grid(
        g, 5, 5, triangle, 4, congest::NetworkConfig{}, serial_opts);
    for (int threads : {2, 8}) {
      dist::HFreenessOptions opts;
      opts.sweep_threads = threads;
      const auto out = dist::run_h_freeness_grid(
          g, 5, 5, triangle, 4, congest::NetworkConfig{}, opts);
      EXPECT_EQ(out.h_free, serial.h_free) << "threads=" << threads;
      EXPECT_EQ(out.num_subsets, serial.num_subsets);
      EXPECT_EQ(out.num_component_runs, serial.num_component_runs);
      EXPECT_EQ(out.max_run_rounds, serial.max_run_rounds);
    }
  }
}

TEST(ParDeterminism, ParallelFoldMatchesSerialClass) {
  // fold_type_parallel must land on the same hash-consed class as the
  // serial fold when run in the same engine.
  const Graph g = btd_graph(5, 32);
  const auto lowered = mso::lower(lib::triangle_free());
  const auto td = seq::decomposition_for(g);
  const auto plan = bpt::build_global_plan(g, td);
  for (int threads : {2, 8}) {
    bpt::Engine engine(bpt::config_for(*lowered));
    const bpt::TypeId parallel_root =
        bpt::fold_type_parallel(engine, plan, g, threads);
    const bpt::TypeId serial_root = bpt::fold_type(engine, plan, g);
    EXPECT_EQ(parallel_root, serial_root) << "threads=" << threads;
  }
  // threads=1 must reproduce the legacy id sequence exactly.
  bpt::Engine serial_engine(bpt::config_for(*lowered));
  const bpt::TypeId legacy = bpt::fold_type(serial_engine, plan, g);
  bpt::Engine one_thread(bpt::config_for(*lowered));
  EXPECT_EQ(bpt::fold_type_parallel(one_thread, plan, g, 1), legacy);
  EXPECT_EQ(one_thread.num_types(), serial_engine.num_types());
}

}  // namespace
}  // namespace dmc
