// Sparse-vs-dense scheduler equivalence (docs/PERFORMANCE.md "Sparse
// stepping and the active set"): the event-driven round scheduler
// (NetworkConfig::sparse_stepping) must be *observationally identical* to
// dense stepping — same verdicts, same per-round trace digests, same round
// counts — across all four pipelines and all thread counts, while stepping
// strictly fewer nodes. Same contract for the elimination tree's
// change-only flooding (ElimTreeOptions::sparse_flood): identical tree and
// rounds, strictly fewer messages. These tests carry the `scale` ctest
// label so CI can run them standalone: ctest -L scale.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "congest/conformance.hpp"
#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/elim_tree.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"

namespace dmc {
namespace {

namespace lib = mso::lib;
using mso::Sort;

Graph btd_graph(unsigned seed, int n = 24, int d = 3) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, 0.4, rng);
}

struct RunResult {
  std::string verdict;
  std::vector<std::uint64_t> digests;
  long rounds = 0;
  long long active_steps = 0;
};

template <typename Fn>
RunResult run_once(const Graph& g, int threads, bool sparse, Fn&& protocol) {
  audit::RoundDigestSink sink;
  congest::NetworkConfig cfg;
  cfg.sink = &sink;
  cfg.threads = threads;
  cfg.sparse_stepping = sparse;
  congest::Network net(g, cfg);
  RunResult out;
  out.verdict = protocol(net);
  out.digests = sink.digests();
  out.rounds = net.stats().rounds;
  out.active_steps = net.stats().active_steps;
  return out;
}

/// The core equivalence harness: dense serial is the reference; every
/// (threads, scheduler) combination must reproduce its verdict, digest
/// stream, and round count exactly.
template <typename Fn>
void expect_scheduler_invariant(const Graph& g, Fn&& protocol) {
  const RunResult ref = run_once(g, 1, /*sparse=*/false, protocol);
  for (int threads : {1, 2, 8}) {
    for (bool sparse : {false, true}) {
      const RunResult run = run_once(g, threads, sparse, protocol);
      EXPECT_EQ(run.verdict, ref.verdict)
          << "threads=" << threads << " sparse=" << sparse;
      EXPECT_EQ(run.digests, ref.digests)
          << "threads=" << threads << " sparse=" << sparse;
      EXPECT_EQ(run.rounds, ref.rounds)
          << "threads=" << threads << " sparse=" << sparse;
    }
  }
}

TEST(ScaleEquivalence, DecisionSchedulerInvariant) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    expect_scheduler_invariant(btd_graph(seed), [](congest::Network& net) {
      const auto out = dist::run_decision(net, lib::triangle_free(), 3);
      return std::string(out.holds ? "holds" : "fails");
    });
  }
}

TEST(ScaleEquivalence, CountingSchedulerInvariant) {
  expect_scheduler_invariant(btd_graph(2, 16), [](congest::Network& net) {
    const auto out = dist::run_count(net, lib::independent_set(),
                                     {{"S", Sort::VertexSet}}, 3);
    return "count=" + std::to_string(out.count);
  });
}

TEST(ScaleEquivalence, OptimizationSchedulerInvariant) {
  expect_scheduler_invariant(btd_graph(1), [](congest::Network& net) {
    const auto out =
        dist::run_minimize(net, lib::dominating_set(), "S", Sort::VertexSet, 3);
    if (!out.best_weight) return std::string("infeasible");
    return "optimum=" + std::to_string(*out.best_weight);
  });
}

TEST(ScaleEquivalence, OptMarkedSchedulerInvariant) {
  expect_scheduler_invariant(btd_graph(4), [](congest::Network& net) {
    const auto out = dist::run_optmarked(net, lib::independent_set(), "S",
                                         Sort::VertexSet, 3);
    return std::string(out.satisfies ? "satisfies" : "violates") +
           (out.is_optimal ? "+optimal" : "");
  });
}

TEST(ScaleEquivalence, SparseFloodThreadInvariantPerScheduler) {
  // Change-only flooding alters the message stream (that is its point) and
  // lets nodes sleep through rounds they would otherwise annotate, so its
  // traced digests are comparable only within one scheduler setting:
  // thread counts must not change them, and verdict + round count must
  // agree across everything.
  auto protocol = [](congest::Network& net) {
    dist::ElimTreeOptions opts;
    opts.sparse_flood = true;
    const auto out = dist::run_decision(net, lib::triangle_free(), 3,
                                        /*engine=*/nullptr, opts);
    return std::string(out.holds ? "holds" : "fails");
  };
  const Graph g = btd_graph(3);
  const RunResult dense_ref = run_once(g, 1, /*sparse=*/false, protocol);
  const RunResult sparse_ref = run_once(g, 1, /*sparse=*/true, protocol);
  EXPECT_EQ(sparse_ref.verdict, dense_ref.verdict);
  EXPECT_EQ(sparse_ref.rounds, dense_ref.rounds);
  for (int threads : {2, 8}) {
    for (bool sparse : {false, true}) {
      const RunResult run = run_once(g, threads, sparse, protocol);
      const RunResult& ref = sparse ? sparse_ref : dense_ref;
      EXPECT_EQ(run.verdict, ref.verdict)
          << "threads=" << threads << " sparse=" << sparse;
      EXPECT_EQ(run.digests, ref.digests)
          << "threads=" << threads << " sparse=" << sparse;
      EXPECT_EQ(run.rounds, ref.rounds)
          << "threads=" << threads << " sparse=" << sparse;
    }
  }
}

TEST(ScaleEquivalence, SparseSteppingSavesWorkOnLongPaths) {
  // Algorithm 2's literal schedule floods every round, which keeps every
  // node's inbox warm — the active set can only shrink once change-only
  // flooding quiets the election. With both on, a deep-path instance is
  // quiescent almost everywhere: the active set must be a small fraction
  // of the dense n * rounds budget, at an identical verdict and round
  // count.
  const Graph g = gen::deeppath(400, 4);
  auto protocol = [](congest::Network& net) {
    dist::ElimTreeOptions opts;
    opts.sparse_flood = net.config().sparse_stepping;
    const auto out = dist::run_decision(net, lib::triangle_free(), 4,
                                        /*engine=*/nullptr, opts);
    return std::string(out.holds ? "holds" : "fails");
  };
  const RunResult dense = run_once(g, 1, false, protocol);
  const RunResult sparse = run_once(g, 1, true, protocol);
  EXPECT_EQ(sparse.verdict, dense.verdict);
  EXPECT_EQ(sparse.rounds, dense.rounds);
  EXPECT_EQ(dense.active_steps,
            static_cast<long long>(g.num_vertices()) * dense.rounds);
  EXPECT_LT(sparse.active_steps, dense.active_steps / 4);
}

TEST(ScaleEquivalence, SparseFloodSameTreeFewerMessages) {
  for (unsigned seed = 1; seed <= 3; ++seed) {
    const Graph g = btd_graph(seed, 32, 3);
    auto build = [&](bool sparse_flood) {
      congest::NetworkConfig cfg;
      cfg.id_seed = seed;
      cfg.sparse_stepping = true;
      congest::Network net(g, cfg);
      dist::ElimTreeOptions opts;
      opts.sparse_flood = sparse_flood;
      auto result = dist::run_elim_tree(net, 3, opts);
      return std::make_pair(std::move(result), net.stats().messages);
    };
    const auto [dense, dense_msgs] = build(false);
    const auto [sparse, sparse_msgs] = build(true);
    ASSERT_TRUE(dense.success);
    ASSERT_TRUE(sparse.success);
    EXPECT_EQ(sparse.parent, dense.parent) << "seed=" << seed;
    EXPECT_EQ(sparse.depth, dense.depth) << "seed=" << seed;
    EXPECT_EQ(sparse.rounds, dense.rounds) << "seed=" << seed;
    EXPECT_LT(sparse_msgs, dense_msgs) << "seed=" << seed;
  }
}

TEST(ScaleEquivalence, FastForwardSkipsQuietStretches) {
  // With no sink/metrics/audit, the scheduler fast-forwards through round
  // spans where every node sleeps. Same outcome, same round count — the
  // skipped rounds still count; they are just not simulated one by one.
  const Graph g = gen::spider(4, 12);
  auto run = [&](bool sparse) {
    congest::NetworkConfig cfg;
    cfg.id_seed = 7;
    cfg.sparse_stepping = sparse;
    congest::Network net(g, cfg);
    dist::ElimTreeOptions opts;
    opts.sparse_flood = sparse;
    const auto result = dist::run_elim_tree(net, 4, opts);
    return std::make_tuple(result.success, result.rounds,
                           net.stats().active_steps);
  };
  const auto [dense_ok, dense_rounds, dense_steps] = run(false);
  const auto [sparse_ok, sparse_rounds, sparse_steps] = run(true);
  EXPECT_TRUE(dense_ok);
  EXPECT_TRUE(sparse_ok);
  EXPECT_EQ(sparse_rounds, dense_rounds);
  EXPECT_LT(sparse_steps, dense_steps / 2);
}

}  // namespace
}  // namespace dmc
