// Serving layer (src/serve): oracle equality and scheduler semantics.
//
// The load-bearing contract is *oracle equality*: a query answered by the
// daemon — any pipeline, cold or warm universe, batched with same-key
// neighbours or alone — must produce the byte-identical canonical result
// text (hence digest) as the equivalent one-shot run (run_one_shot, the
// exact cold-CLI path). Warmth and batching are allowed to change latency,
// never verdicts.
//
// Also pinned here: the issue's headline acceptance — a warm-key batch of
// 16 identical-(formula,width) queries performs exactly one universe
// construction — plus admission backpressure, queue-deadline expiry, and
// the protocol's malformed/exit-code mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"
#include "obs/spans.hpp"
#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/span_store.hpp"

namespace dmc::serve {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    // Per-test-case directory: ctest -j runs cases as separate processes,
    // so a shared path would be wiped out from under a concurrent case.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("dmc_serve_test_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

Query make_query(const std::string& id, const std::string& verb,
                 const std::string& formula, const std::string& family,
                 int dist = 4) {
  Query q;
  q.id = id;
  q.verb = verb;
  q.formula = formula;
  q.family = family;
  q.dist = dist;
  return q;
}

/// The four-pipeline probe set used by the oracle-equality cases.
std::vector<Query> probe_queries() {
  std::vector<Query> qs;
  qs.push_back(make_query("dec", "decide",
                          "exists vertex x, y. adj(x, y)", "path:6"));
  Query mx = make_query("max", "maximize", "!adj(S,S)", "path:6");
  mx.var = "S";
  mx.sort = "vset";
  qs.push_back(mx);
  Query mn = make_query("min", "minimize",
                        "forall vertex x. x in S | adj(x, S)", "cycle:6");
  mn.var = "S";
  mn.sort = "vset";
  qs.push_back(mn);
  Query ct = make_query("cnt", "count", "!adj(S,S)", "path:5");
  ct.vars = "S:vset";
  qs.push_back(ct);
  return qs;
}

/// Runs `qs` through a Scheduler (tier-shared engines) and returns the
/// responses keyed by query id.
std::map<std::string, JsonObject> run_scheduled(
    Scheduler& sched, const std::vector<Query>& qs) {
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, JsonObject> out;
  for (const Query& q : qs) {
    std::string error;
    auto p = prepare(q, error);
    EXPECT_TRUE(p) << q.id << ": " << error;
    if (!p) continue;
    const bool ok = sched.submit(std::move(*p), [&, id = q.id](
                                                    const JsonObject& resp) {
      std::lock_guard<std::mutex> lock(mu);
      out[id] = resp;
      cv.notify_all();
    });
    EXPECT_TRUE(ok) << "admission rejected " << q.id;
  }
  sched.start();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return out.size() == qs.size(); });
  return out;
}

std::string text_of(const JsonObject& resp, const char* field) {
  const auto it = resp.find(field);
  return it == resp.end() ? std::string() : it->second.as_string();
}

TEST(ServeOracle, SoloAndBatchedColdAndWarmMatchOneShot) {
  const std::vector<Query> qs = probe_queries();
  std::map<std::string, QueryResult> oracle;
  for (const Query& q : qs) {
    oracle[q.id] = run_one_shot(q);
    ASSERT_EQ(oracle[q.id].code, 0) << q.id << ": " << oracle[q.id].result;
  }

  bpt::UniverseTier tier;  // shared across both passes: pass 2 is warm
  for (int pass = 0; pass < 2; ++pass) {
    // Two configurations per pass: one worker forces same-key grouping
    // (batched), four workers with distinct keys approximates solo runs.
    SchedulerOptions opts;
    opts.workers = pass == 0 ? 1 : 4;
    Scheduler sched(opts, tier);
    const auto out = run_scheduled(sched, qs);
    ASSERT_EQ(out.size(), qs.size());
    for (const Query& q : qs) {
      const JsonObject& resp = out.at(q.id);
      EXPECT_EQ(text_of(resp, "result"), oracle[q.id].result)
          << "pass " << pass << " verdict drift for " << q.id;
      EXPECT_EQ(text_of(resp, "digest"), oracle[q.id].digest)
          << "pass " << pass << " digest drift for " << q.id;
      EXPECT_EQ(text_of(resp, "status"), oracle[q.id].status);
      if (q.verb == "maximize" || q.verb == "minimize") {
        // The witness is certificate data, outside the canonical text: any
        // optimal solution is correct, and reconstruction tie-breaks on
        // engine class ids, which drift with warmth. It must be present
        // and must never leak into the digested verdict.
        EXPECT_EQ(text_of(resp, "witness").rfind("selected:", 0), 0u) << q.id;
        EXPECT_EQ(text_of(resp, "result").find("selected"),
                  std::string::npos) << q.id;
      }
    }
  }
  // Pass 2 reused pass 1's engines: no additional constructions. The
  // probe set has 3 distinct engine keys, not 4 — maximize and count both
  // lower `!adj(S,S)` with one vset slot, so they share one universe
  // (that cross-pipeline sharing is itself part of the contract).
  EXPECT_EQ(tier.stats().misses, 3);
  EXPECT_EQ(tier.stats().keys, 3u);
}

TEST(ServeOracle, WarmKeyBatchOf16ConstructsExactlyOneUniverse) {
  metrics::Registry registry;
  metrics::Registry* prev = metrics::set_global(&registry);
  {
    bpt::UniverseTier tier;  // fresh tier resolves counters against registry
    std::vector<Query> qs;
    std::map<std::string, QueryResult> oracle;
    for (int i = 0; i < 16; ++i) {
      Query q = make_query("q" + std::to_string(i), "decide",
                           "exists vertex x, y. adj(x, y)",
                           "path:" + std::to_string(5 + i % 4));
      oracle[q.id] = run_one_shot(q);
      qs.push_back(std::move(q));
    }
    SchedulerOptions opts;
    opts.workers = 4;  // even with parallel workers: one construction
    Scheduler sched(opts, tier);
    const auto out = run_scheduled(sched, qs);
    ASSERT_EQ(out.size(), 16u);
    int warm = 0;
    std::size_t max_batch = 0;
    for (const Query& q : qs) {
      const JsonObject& resp = out.at(q.id);
      EXPECT_EQ(text_of(resp, "digest"), oracle[q.id].digest) << q.id;
      warm += resp.find("warm")->second.as_bool() ? 1 : 0;
      max_batch = std::max(
          max_batch,
          static_cast<std::size_t>(resp.find("batch")->second.as_int()));
    }
    // One group, one lease, one construction: the batch shares a single
    // acquire, so the tier sees exactly one miss and zero extra traffic.
    EXPECT_EQ(warm, 15) << "all but the builder must run warm";
    EXPECT_EQ(max_batch, 16u) << "same-key queries must coalesce";
    const bpt::UniverseTier::Stats s = tier.stats();
    EXPECT_EQ(s.misses, 1) << "batch of 16 must construct exactly once";
    EXPECT_EQ(s.builds, 1);
    EXPECT_EQ(s.keys, 1u);
    // Same acceptance, read through the metrics counters the daemon
    // exports (bpt.universe_tier.* are the single-flight counters).
    EXPECT_EQ(registry.counter("bpt.universe_tier.builds").value(), 1);
    EXPECT_EQ(registry.counter("bpt.universe_tier.misses").value(), 1);
    EXPECT_EQ(registry.counter("serve.admission.accepted").value(), 16);
  }
  metrics::set_global(prev);
}

TEST(ServeScheduler, AdmissionBackpressureRejectsBeyondBound) {
  bpt::UniverseTier tier;
  // Declared before the scheduler: its workers may still be invoking
  // respond while the scheduler drains during destruction.
  std::atomic<int> answered{0};
  SchedulerOptions opts;
  opts.workers = 1;
  opts.max_queue = 2;
  Scheduler sched(opts, tier);  // not started: queue can only fill
  const Query q = probe_queries().front();
  auto respond = [&](const JsonObject&) { answered.fetch_add(1); };
  for (int i = 0; i < 2; ++i) {
    std::string error;
    auto p = prepare(q, error);
    ASSERT_TRUE(p);
    EXPECT_TRUE(sched.submit(std::move(*p), respond)) << i;
  }
  std::string error;
  auto p = prepare(q, error);
  ASSERT_TRUE(p);
  EXPECT_FALSE(sched.submit(std::move(*p), respond))
      << "third submit must bounce off max_queue=2";
  EXPECT_EQ(sched.queued(), 2u);
  sched.start();
  sched.stop();  // drain contract: both admitted queries are answered
  // Scheduler destructor joins the workers.
}

TEST(ServeScheduler, QueueDeadlineExpiryAnswersWithoutRunning) {
  bpt::UniverseTier tier;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(opts, tier);  // submit before start: guaranteed queue wait
  Query q = probe_queries().front();
  q.deadline_ms = 1;
  std::string error;
  auto p = prepare(q, error);
  ASSERT_TRUE(p);
  std::mutex mu;
  std::condition_variable cv;
  JsonObject resp;
  bool got = false;
  ASSERT_TRUE(sched.submit(std::move(*p), [&](const JsonObject& r) {
    std::lock_guard<std::mutex> lock(mu);
    resp = r;
    got = true;
    cv.notify_all();
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sched.start();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return got; });
  }
  EXPECT_EQ(text_of(resp, "status"), "deadline");
  const auto code_it = resp.find("code");
  ASSERT_NE(code_it, resp.end());
  EXPECT_EQ(code_it->second.as_int(), kDeadlineExit);
  EXPECT_EQ(resp.find("rounds")->second.as_int(-1), 0) << "must not run";
}

TEST(ServeProtocol, MalformedRequestsAndExitCodeMapping) {
  EXPECT_EQ(parse_request("not json").kind, Request::Kind::kMalformed);
  EXPECT_EQ(parse_request("[1,2]").kind, Request::Kind::kMalformed);
  EXPECT_EQ(parse_request("{\"verb\":\"decide\"}").kind,
            Request::Kind::kMalformed);  // missing formula
  const Request both = parse_request(
      "{\"verb\":\"decide\",\"formula\":\"true\",\"family\":\"path:4\","
      "\"graph\":\"p 1 0\",\"dist\":2}");
  EXPECT_EQ(both.kind, Request::Kind::kMalformed)
      << "family and graph are mutually exclusive";
  const Request ping = parse_request("{\"verb\":\"ping\",\"id\":7}");
  EXPECT_EQ(ping.kind, Request::Kind::kPing);
  EXPECT_EQ(ping.id, "7");

  EXPECT_EQ(status_exit_code("ok"), 0);
  EXPECT_EQ(status_exit_code("fails"), 1);
  EXPECT_EQ(status_exit_code("infeasible"), 1);
  EXPECT_EQ(status_exit_code("treedepth"), 3);
  EXPECT_EQ(status_exit_code("error"), 4);
  EXPECT_EQ(status_exit_code("degraded"), 6);
  EXPECT_EQ(status_exit_code("deadline"), 6);
  EXPECT_EQ(status_exit_code("crashed"), 7);
  EXPECT_EQ(status_exit_code("overloaded"), 8);
  EXPECT_EQ(status_exit_code("malformed"), 2);

  // Round-trip: to_line output parses back to the same query.
  Query q = probe_queries()[1];
  q.deadline_ms = 250;
  const Request round = parse_request(to_line(q));
  ASSERT_EQ(round.kind, Request::Kind::kQuery);
  EXPECT_EQ(round.query.verb, q.verb);
  EXPECT_EQ(round.query.formula, q.formula);
  EXPECT_EQ(round.query.var, q.var);
  EXPECT_EQ(round.query.deadline_ms, 250);
}

TEST(ServeServer, SocketEndToEndWithShutdownDrain) {
  TempDir tmp;
  const std::string sock = (tmp.path / "d.sock").string();
  ServerOptions opts;
  opts.socket_path = sock;
  opts.sched.workers = 2;
  Server server(opts);
  int rc = -1;
  std::thread daemon([&] { rc = server.run(); });

  // Wait for the socket to come up.
  std::unique_ptr<Client> client;
  for (int i = 0; i < 100 && !client; ++i) {
    try {
      client = std::make_unique<Client>(sock);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(client) << "daemon socket never appeared";

  const auto pong = client->ping();
  ASSERT_TRUE(pong);
  EXPECT_EQ((*pong)["status"].as_string(), "pong");

  const std::vector<Query> qs = probe_queries();
  const auto responses = client->pipeline(qs);
  ASSERT_EQ(responses.size(), qs.size());
  for (const Query& q : qs) {
    const QueryResult want = run_one_shot(q);
    const Json& resp = responses.at(q.id);
    EXPECT_EQ(resp["digest"].as_string(), want.digest) << q.id;
    EXPECT_EQ(resp["result"].as_string(), want.result) << q.id;
  }

  // Malformed over the wire: answered, connection stays usable.
  ASSERT_TRUE(client->send_line("{\"id\":\"bad\",\"verb\":\"decide\"}"));
  const auto bad = client->recv(5000);
  ASSERT_TRUE(bad);
  EXPECT_EQ((*bad)["status"].as_string(), "malformed");
  EXPECT_EQ((*bad)["code"].as_int(), 2);

  const auto metrics_resp = client->metrics();
  ASSERT_TRUE(metrics_resp);
  EXPECT_TRUE((*metrics_resp)["universe_tier"].is_object());

  const auto down = client->shutdown();
  ASSERT_TRUE(down);
  EXPECT_EQ((*down)["status"].as_string(), "shutting_down");
  daemon.join();
  EXPECT_EQ(rc, 0);
  EXPECT_FALSE(fs::exists(sock)) << "socket file must be unlinked";
}

TEST(ServeSpans, ResponseCarriesSpanBreakdown) {
  bpt::UniverseTier tier;
  SchedulerOptions opts;
  opts.workers = 1;
  Scheduler sched(opts, tier);
  std::vector<obs::SpanLog> logs;
  std::mutex logs_mu;
  sched.set_span_sink([&](obs::SpanLog&& log) {
    std::lock_guard<std::mutex> lock(logs_mu);
    logs.push_back(std::move(log));
  });
  const std::vector<Query> qs = {probe_queries().front()};
  const auto out = run_scheduled(sched, qs);
  const JsonObject& resp = out.at(qs[0].id);

  const auto spans_it = resp.find("spans");
  ASSERT_NE(spans_it, resp.end()) << "response must carry a spans object";
  const JsonObject& spans = spans_it->second.as_object();
  for (const char* key : {"queue_ms", "universe_ms", "exec_ms", "total_ms"})
    ASSERT_NE(spans.find(key), spans.end()) << key;
  // The root covers its children: total >= queue + universe + exec.
  EXPECT_GE(spans.find("total_ms")->second.as_int(),
            spans.find("exec_ms")->second.as_int());

  // The sink received the full log: root "query" with queue/exec children.
  std::lock_guard<std::mutex> lock(logs_mu);
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0].query_id(), qs[0].id);
  ASSERT_NE(logs[0].find("query"), nullptr);
  ASSERT_NE(logs[0].find("exec"), nullptr);
  ASSERT_NE(logs[0].find("queue"), nullptr);
  // The cold batch head also times its universe construction.
  ASSERT_NE(logs[0].find("universe"), nullptr);
}

TEST(ServeSpans, SpanStoreEvictsOldestAndRefreshesReusedIds) {
  SpanStore store;
  for (int i = 0; i < 300; ++i)
    store.put(obs::SpanLog("q" + std::to_string(i)));
  EXPECT_EQ(store.size(), SpanStore::kDefaultCapacity);
  EXPECT_FALSE(store.find_json("q0").has_value()) << "oldest must be evicted";
  EXPECT_TRUE(store.find_json("q299").has_value());
  EXPECT_FALSE(store.find_json("unknown").has_value());

  // Re-using an id replaces the stored log and refreshes its FIFO slot.
  obs::SpanLog replay("q44");
  obs::set_now_ms_for_test(5);
  const int s = replay.open("exec");
  obs::set_now_ms_for_test(15);
  replay.close(s);
  obs::set_now_ms_for_test(-1);
  store.put(std::move(replay));
  EXPECT_EQ(store.size(), SpanStore::kDefaultCapacity) << "replace, not grow";
  const auto json = store.find_json("q44");
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("\"name\":\"exec\""), std::string::npos) << *json;

  // Empty ids are dropped, not stored.
  store.put(obs::SpanLog());
  EXPECT_EQ(store.size(), SpanStore::kDefaultCapacity);
}

TEST(ServeFlight, DegradedQueryLeavesFlightDumpInFlightDir) {
  TempDir tmp;
  bpt::UniverseTier tier;
  SchedulerOptions opts;
  opts.workers = 1;
  opts.flight_dir = tmp.path.string();
  Scheduler sched(opts, tier);
  // A one-round budget forces the round-limit degradation (code 6), the
  // path that captures the network's flight ring into the result.
  Query q = probe_queries().front();
  q.id = "degraded/one";  // sanitizer must map this to a safe file name
  q.max_rounds = 1;
  const auto out = run_scheduled(sched, {q});
  const JsonObject& resp = out.at(q.id);
  EXPECT_EQ(text_of(resp, "status"), "degraded");
  EXPECT_EQ(resp.find("code")->second.as_int(), 6);

  const fs::path dump = tmp.path / "flight-degraded_one.jsonl";
  ASSERT_TRUE(fs::exists(dump)) << "degraded query must leave a flight dump";
  std::ifstream in(dump);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"type\":\"flight_header\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"type\":\"run_begin\""), std::string::npos);

  // Healthy queries must not leave dumps.
  const auto ok_out = run_scheduled(sched, {probe_queries().front()});
  EXPECT_EQ(text_of(ok_out.at("dec"), "status"), "ok");
  std::size_t dumps = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path)) {
    (void)entry;
    ++dumps;
  }
  EXPECT_EQ(dumps, 1u) << "only the degraded query may dump";
}

TEST(ServeServer, TraceVerbReturnsSpanTimeline) {
  TempDir tmp;
  const std::string sock = (tmp.path / "d.sock").string();
  ServerOptions opts;
  opts.socket_path = sock;
  opts.sched.workers = 1;
  Server server(opts);
  int rc = -1;
  std::thread daemon([&] { rc = server.run(); });
  std::unique_ptr<Client> client;
  for (int i = 0; i < 100 && !client; ++i) {
    try {
      client = std::make_unique<Client>(sock);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(client) << "daemon socket never appeared";

  const Query q = probe_queries().front();
  const auto responses = client->pipeline({q});
  ASSERT_EQ(responses.size(), 1u);

  // trace <id> of an answered query returns its retained span timeline.
  const auto trace = client->trace(q.id);
  ASSERT_TRUE(trace);
  EXPECT_EQ((*trace)["status"].as_string(), "ok");
  ASSERT_TRUE((*trace)["trace"].is_object());
  const Json& body = (*trace)["trace"];
  EXPECT_EQ(body["id"].as_string(), q.id);
  ASSERT_TRUE(body["spans"].is_array());
  EXPECT_GT(body["spans"].as_array().size(), 0u);

  // Unknown ids map to not_found / exit 1; malformed trace to code 2.
  const auto missing = client->trace("never-submitted");
  ASSERT_TRUE(missing);
  EXPECT_EQ((*missing)["status"].as_string(), "not_found");
  EXPECT_EQ((*missing)["code"].as_int(), 1);
  ASSERT_TRUE(client->send_line("{\"id\":\"t\",\"verb\":\"trace\"}"));
  const auto bad = client->recv(5000);
  ASSERT_TRUE(bad);
  EXPECT_EQ((*bad)["status"].as_string(), "malformed");

  const auto down = client->shutdown();
  ASSERT_TRUE(down);
  daemon.join();
  EXPECT_EQ(rc, 0);
}

}  // namespace
}  // namespace dmc::serve
