// Parameterized property sweeps (TEST_P): the optimization pipeline across
// (problem, seed) combinations, sequential AND distributed, against the
// exact oracles.
#include <gtest/gtest.h>

#include "congest/network.hpp"
#include "dist/optimization.hpp"
#include "graph/exact.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

using mso::Sort;
namespace lib = mso::lib;

enum class Problem { MaxIS, MinVC, MinDS, MinTDS };

struct SweepParam {
  Problem problem;
  unsigned seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* names[] = {"MaxIS", "MinVC", "MinDS", "MinTDS"};
  return std::string(names[static_cast<int>(info.param.problem)]) + "_s" +
         std::to_string(info.param.seed);
}

mso::FormulaPtr formula_of(Problem p) {
  switch (p) {
    case Problem::MaxIS:
      return lib::independent_set();
    case Problem::MinVC:
      return lib::vertex_cover();
    case Problem::MinDS:
      return lib::dominating_set();
    case Problem::MinTDS:
      return lib::total_dominating_set();
  }
  throw std::logic_error("unreachable");
}

bool is_max(Problem p) { return p == Problem::MaxIS; }

Weight oracle_of(Problem p, const Graph& g) {
  switch (p) {
    case Problem::MaxIS:
      return exact::max_weight_independent_set(g);
    case Problem::MinVC:
      return exact::min_weight_vertex_cover(g);
    case Problem::MinDS:
      return exact::min_weight_dominating_set(g);
    case Problem::MinTDS: {
      // brute force (unit weights)
      Weight best = -1;
      for (std::uint64_t m = 0; m < (1ull << g.num_vertices()); ++m) {
        bool ok = true;
        for (VertexId v = 0; v < g.num_vertices() && ok; ++v) {
          bool covered = false;
          for (auto [w, e] : g.incident(v)) covered |= (m >> w) & 1;
          ok = covered;
        }
        if (!ok) continue;
        const Weight w = std::popcount(m);
        if (best < 0 || w < best) best = w;
      }
      return best;
    }
  }
  throw std::logic_error("unreachable");
}

class OptimizationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OptimizationSweep, SequentialAndDistributedMatchOracle) {
  const auto [problem, seed] = GetParam();
  gen::Rng rng(seed);
  const Graph g = gen::random_bounded_treedepth(8, 3, 0.45, rng);
  const auto formula = formula_of(problem);
  const Weight oracle = oracle_of(problem, g);
  // total domination can be infeasible (isolated-ish vertices)
  const auto seq_result =
      is_max(problem) ? seq::maximize(g, formula, "S", Sort::VertexSet)
                      : seq::minimize(g, formula, "S", Sort::VertexSet);
  if (oracle < 0 && problem == Problem::MinTDS) {
    EXPECT_FALSE(seq_result.has_value());
    return;
  }
  ASSERT_TRUE(seq_result.has_value());
  EXPECT_EQ(seq_result->weight, oracle);

  congest::Network net(g, {.id_seed = seed + 1});
  const auto dist_result =
      is_max(problem)
          ? dist::run_maximize(net, formula, "S", Sort::VertexSet, 3)
          : dist::run_minimize(net, formula, "S", Sort::VertexSet, 3);
  ASSERT_FALSE(dist_result.treedepth_exceeded);
  ASSERT_TRUE(dist_result.best_weight.has_value());
  EXPECT_EQ(*dist_result.best_weight, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    ProblemsBySeed, OptimizationSweep,
    ::testing::Values(SweepParam{Problem::MaxIS, 1},
                      SweepParam{Problem::MaxIS, 2},
                      SweepParam{Problem::MaxIS, 3},
                      SweepParam{Problem::MinVC, 1},
                      SweepParam{Problem::MinVC, 2},
                      SweepParam{Problem::MinVC, 3},
                      SweepParam{Problem::MinDS, 1},
                      SweepParam{Problem::MinDS, 2},
                      SweepParam{Problem::MinDS, 3},
                      SweepParam{Problem::MinTDS, 1},
                      SweepParam{Problem::MinTDS, 2}),
    param_name);

}  // namespace
}  // namespace dmc
