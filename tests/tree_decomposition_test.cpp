#include "td/tree_decomposition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace dmc {
namespace {

TEST(TreeDecomposition, WidthAndChildren) {
  TreeDecomposition td;
  td.parent = {-1, 0, 0};
  td.bags = {{0, 1}, {1, 2}, {1, 3}};
  EXPECT_EQ(td.width(), 1);
  const auto ch = td.children();
  EXPECT_EQ(ch[0].size(), 2u);
  const auto order = td.topological_order();
  EXPECT_EQ(order[0], 0);
}

TEST(TreeDecomposition, ValidForPath) {
  const Graph g = gen::path(4);
  TreeDecomposition td;
  td.parent = {-1, 0, 1};
  td.bags = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_TRUE(td.valid_for(g));
}

TEST(TreeDecomposition, DetectsMissingEdge) {
  const Graph g = gen::cycle(4);
  TreeDecomposition td;
  td.parent = {-1, 0, 1};
  td.bags = {{0, 1}, {1, 2}, {2, 3}};  // edge 3-0 not covered
  EXPECT_FALSE(td.valid_for(g));
}

TEST(TreeDecomposition, DetectsDisconnectedOccurrences) {
  const Graph g = gen::path(3);
  TreeDecomposition td;
  td.parent = {-1, 0, 1};
  // vertex 0 appears in bags 0 and 2 but not 1 -> not a subtree
  td.bags = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_FALSE(td.valid_for(g));
}

TEST(TreeDecomposition, DetectsMissingVertex) {
  const Graph g = gen::path(3);
  TreeDecomposition td;
  td.parent = {-1, 0};
  td.bags = {{0, 1}, {1}};  // vertex 2 missing
  EXPECT_FALSE(td.valid_for(g));
}

TEST(CanonicalDecomposition, FromEliminationForest) {
  // C4 with elimination tree 0 > 1 > {2, 3}? Edges 0-1,1-2,2-3,3-0.
  // Use chain 0>1>2>3 which is valid for C4 (all edges ancestor-descendant).
  const Graph g = gen::cycle(4);
  EliminationForest chain({-1, 0, 1, 2});
  ASSERT_TRUE(chain.valid_for(g));
  const TreeDecomposition td = canonical_tree_decomposition(g, chain);
  EXPECT_TRUE(td.valid_for(g));
  EXPECT_EQ(td.width(), chain.depth() - 1);
  EXPECT_EQ(td.bags[3], (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(td.bags[0], (std::vector<VertexId>{0}));
}

TEST(CanonicalDecomposition, RejectsInvalidForest) {
  const Graph g = gen::path(4);
  EliminationForest star({-1, 0, 0, 0});
  EXPECT_THROW(canonical_tree_decomposition(g, star), std::invalid_argument);
}

TEST(CanonicalDecomposition, RandomGraphsProperty) {
  gen::Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::random_connected(11, 5, rng);
    const auto [td_value, forest] = exact_treedepth_forest(g);
    const TreeDecomposition td = canonical_tree_decomposition(g, forest);
    EXPECT_TRUE(td.valid_for(g));
    EXPECT_EQ(td.width(), forest.depth() - 1);
  }
}

}  // namespace
}  // namespace dmc
