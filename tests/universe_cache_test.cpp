// Persistent universe cache (bpt/universe_cache.hpp): cold write → warm
// read must reproduce identical TypeIds and verdicts; corrupted, truncated
// or stale-version files must be rejected (engine untouched) and rebuilt.
// Labelled `par` with the parallel-determinism suite: the cache is the
// third leg of the parallel fold/simulation engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "bpt/universe_cache.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

namespace fs = std::filesystem;
namespace lib = mso::lib;

struct TempDir {
  fs::path path;
  TempDir() {
    // Per-test-case directory: ctest -j runs gtest cases of one binary as
    // separate concurrent processes, so a shared path would be wiped out
    // from under a sibling case.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("dmc_universe_cache_test_") +
            (info != nullptr ? info->name() : "unknown"));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// Builds a populated engine by folding `formula` over a small graph.
struct Built {
  bpt::Engine engine;
  bpt::TypeId root;
  Built(const mso::FormulaPtr& lowered, const Graph& g, const bpt::Plan& plan)
      : engine(bpt::config_for(*lowered)),
        root(bpt::fold_type(engine, plan, g)) {}
};

class UniverseCacheTest : public ::testing::Test {
 protected:
  UniverseCacheTest()
      : g(gen::path(9)),
        lowered(mso::lower(lib::triangle_free())),
        td(seq::decomposition_for(g)),
        plan(bpt::build_global_plan(g, td)) {}

  std::string cache_file(const char* name) const {
    return (tmp.path / name).string();
  }

  TempDir tmp;
  Graph g;
  mso::FormulaPtr lowered;
  TreeDecomposition td;
  bpt::Plan plan;
};

TEST_F(UniverseCacheTest, RoundTripPreservesTypeIdsAndVerdicts) {
  Built cold(lowered, g, plan);
  const std::string path = cache_file("u.dmcu");
  ASSERT_TRUE(bpt::save_universe_cache(cold.engine, path));

  bpt::Engine warm(bpt::config_for(*lowered));
  ASSERT_TRUE(bpt::load_universe_cache(warm, path));
  EXPECT_EQ(warm.num_types(), cold.engine.num_types());

  // The warm engine must replay the same fold onto the *same* ids: every
  // intern is a memo/index hit against the deserialized tables.
  const bpt::TypeId warm_root = bpt::fold_type(warm, plan, g);
  EXPECT_EQ(warm_root, cold.root);
  EXPECT_EQ(warm.num_types(), cold.engine.num_types())
      << "warm fold interned new types — cache did not round-trip";

  // Verdict equality through the evaluator.
  bpt::Evaluator cold_eval(cold.engine, lowered);
  bpt::Evaluator warm_eval(warm, lowered);
  EXPECT_EQ(warm_eval.eval(warm_root), cold_eval.eval(cold.root));
}

TEST_F(UniverseCacheTest, MissingFileLeavesEngineUntouched) {
  bpt::Engine engine(bpt::config_for(*lowered));
  const std::size_t before = engine.num_types();
  EXPECT_FALSE(bpt::load_universe_cache(engine, cache_file("absent.dmcu")));
  EXPECT_EQ(engine.num_types(), before);
}

TEST_F(UniverseCacheTest, CorruptedFileRejectedThenRebuilt) {
  Built cold(lowered, g, plan);
  const std::string path = cache_file("corrupt.dmcu");
  ASSERT_TRUE(bpt::save_universe_cache(cold.engine, path));

  // Flip a byte in the middle of the payload: checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  bpt::Engine engine(bpt::config_for(*lowered));
  EXPECT_FALSE(bpt::load_universe_cache(engine, path));
  EXPECT_EQ(engine.num_types(), bpt::Engine(bpt::config_for(*lowered)).num_types());

  // Rebuild and overwrite: the standard recovery path.
  const bpt::TypeId root = bpt::fold_type(engine, plan, g);
  EXPECT_EQ(root, cold.root);
  ASSERT_TRUE(bpt::save_universe_cache(engine, path));
  bpt::Engine again(bpt::config_for(*lowered));
  EXPECT_TRUE(bpt::load_universe_cache(again, path));
}

TEST_F(UniverseCacheTest, TruncatedFileRejected) {
  Built cold(lowered, g, plan);
  const std::string path = cache_file("short.dmcu");
  ASSERT_TRUE(bpt::save_universe_cache(cold.engine, path));
  fs::resize_file(path, fs::file_size(path) / 3);
  bpt::Engine engine(bpt::config_for(*lowered));
  EXPECT_FALSE(bpt::load_universe_cache(engine, path));
}

TEST_F(UniverseCacheTest, StaleEngineVersionRejected) {
  Built cold(lowered, g, plan);
  const std::string path = cache_file("stale.dmcu");
  ASSERT_TRUE(bpt::save_universe_cache(cold.engine, path));

  // The engine version is the u32 after the 4-byte magic and the u32
  // format version; patch it to a past release.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4 + 4);
    const std::uint32_t old_version = bpt::kEngineCacheVersion + 1000;
    f.write(reinterpret_cast<const char*>(&old_version), sizeof(old_version));
  }
  bpt::Engine engine(bpt::config_for(*lowered));
  EXPECT_FALSE(bpt::load_universe_cache(engine, path));
}

TEST_F(UniverseCacheTest, WrongConfigRejected) {
  Built cold(lowered, g, plan);
  const std::string path = cache_file("config.dmcu");
  ASSERT_TRUE(bpt::save_universe_cache(cold.engine, path));
  const auto other = mso::lower(lib::connected());
  bpt::Engine engine(bpt::config_for(*other));
  EXPECT_FALSE(bpt::load_universe_cache(engine, path));
}

TEST_F(UniverseCacheTest, CachePathVariesWithInputs) {
  const auto cfg = bpt::config_for(*lowered);
  const std::string a = bpt::universe_cache_path("d", "phi", cfg);
  const std::string b = bpt::universe_cache_path("d", "psi", cfg);
  EXPECT_NE(a, b);
  const auto other_cfg = bpt::config_for(*mso::lower(lib::connected()));
  EXPECT_NE(a, bpt::universe_cache_path("d", "phi", other_cfg));
}

}  // namespace
}  // namespace dmc
