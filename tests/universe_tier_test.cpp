// Shared in-process universe tier (bpt/universe_tier.hpp): single-flight
// construction under contention — N concurrent acquirers of one missing
// key must trigger exactly one engine construction and end up sharing one
// engine — plus DMCU write-back/warm-load round-trips. Labelled `par` so
// CI runs the contention cases under TSan: the single-flight slot logic
// is precisely the code a data race would corrupt silently.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bpt/engine.hpp"
#include "bpt/plan.hpp"
#include "bpt/tables.hpp"
#include "bpt/universe_tier.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/lower.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

namespace fs = std::filesystem;
namespace lib = mso::lib;

struct TempDir {
  fs::path path;
  TempDir() {
    // Per-test-case directory: ctest -j runs cases as separate processes,
    // so a shared path would be wiped out from under a concurrent case.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path = fs::temp_directory_path() /
           (std::string("dmc_universe_tier_test_") + info->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

class UniverseTierTest : public ::testing::Test {
 protected:
  UniverseTierTest()
      : g(gen::path(9)),
        lowered(mso::lower(lib::triangle_free())),
        text(mso::to_string(*lowered)),
        cfg(bpt::config_for(*lowered)),
        td(seq::decomposition_for(g)),
        plan(bpt::build_global_plan(g, td)) {}

  TempDir tmp;
  Graph g;
  mso::FormulaPtr lowered;
  std::string text;
  bpt::EngineConfig cfg;
  TreeDecomposition td;
  bpt::Plan plan;
};

TEST_F(UniverseTierTest, SingleFlightUnderContention) {
  constexpr int kThreads = 8;
  bpt::UniverseTier tier;  // in-memory
  std::atomic<int> ready{0};
  std::vector<bpt::UniverseTier::Lease> leases(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      // Barrier: maximize the window where every thread sees the key
      // missing, so a broken tier double-constructs.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      leases[i] = tier.acquire(text, cfg);
      // Fold through the shared engine while others do the same: the
      // lease contract says k1/k2/compose are safe concurrently.
      (void)bpt::fold_type(*leases[i].engine, plan, g);
    });
  for (auto& t : threads) t.join();

  std::set<bpt::Engine*> engines;
  int warm = 0;
  for (const auto& l : leases) {
    ASSERT_NE(l.engine, nullptr);
    engines.insert(l.engine.get());
    warm += l.warm ? 1 : 0;
  }
  EXPECT_EQ(engines.size(), 1u) << "acquirers did not share one engine";
  EXPECT_EQ(warm, kThreads - 1) << "exactly one acquire may construct";

  const bpt::UniverseTier::Stats s = tier.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.builds, 1) << "single-flight violated: multiple constructions";
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(s.keys, 1u);
  EXPECT_EQ(s.saves, 0);  // no disk backing

  // All folds interned into one engine: a second fold is a pure replay.
  bpt::Engine& shared = *leases[0].engine;
  const std::size_t types = shared.num_types();
  (void)bpt::fold_type(shared, plan, g);
  EXPECT_EQ(shared.num_types(), types);

  for (const auto& l : leases) tier.release(l);
}

TEST_F(UniverseTierTest, ConcurrentDistinctKeysBuildIndependently) {
  bpt::UniverseTier tier;
  const auto other = mso::lower(lib::connected());
  const std::string other_text = mso::to_string(*other);
  const bpt::EngineConfig other_cfg = bpt::config_for(*other);

  bpt::UniverseTier::Lease a, b;
  std::thread ta([&] { a = tier.acquire(text, cfg); });
  std::thread tb([&] { b = tier.acquire(other_text, other_cfg); });
  ta.join();
  tb.join();
  EXPECT_NE(a.engine.get(), b.engine.get());
  const auto s = tier.stats();
  EXPECT_EQ(s.keys, 2u);
  EXPECT_EQ(s.misses, 2);
  tier.release(a);
  tier.release(b);
}

TEST_F(UniverseTierTest, WriteBackThenWarmLoadAcrossTiers) {
  const std::string dir = tmp.path.string();
  {
    bpt::UniverseTier tier({dir});
    auto lease = tier.acquire(text, cfg);
    EXPECT_FALSE(lease.warm);
    EXPECT_FALSE(lease.disk_hit);  // nothing persisted yet
    (void)bpt::fold_type(*lease.engine, plan, g);
    tier.release(lease);  // last lease + growth => write-back
    EXPECT_EQ(tier.stats().saves, 1);
  }
  // A new tier (fresh process, conceptually) warm-loads the DMCU file.
  bpt::UniverseTier tier({dir});
  auto lease = tier.acquire(text, cfg);
  EXPECT_FALSE(lease.warm);      // new in-process tier
  EXPECT_TRUE(lease.disk_hit);   // but the construction loaded from disk
  const std::size_t types = lease.engine->num_types();
  EXPECT_GT(types, 0u);
  // Replay is pure memo hits: the persisted universe is complete.
  (void)bpt::fold_type(*lease.engine, plan, g);
  EXPECT_EQ(lease.engine->num_types(), types);
  tier.release(lease);
  // No growth since the disk load: release must not rewrite the file.
  EXPECT_EQ(tier.stats().saves, 0);
}

TEST_F(UniverseTierTest, ReleaseWithoutGrowthDoesNotResave) {
  bpt::UniverseTier tier({tmp.path.string()});
  auto a = tier.acquire(text, cfg);
  (void)bpt::fold_type(*a.engine, plan, g);
  tier.release(a);
  ASSERT_EQ(tier.stats().saves, 1);

  auto b = tier.acquire(text, cfg);
  EXPECT_TRUE(b.warm);
  tier.release(b);  // no new types interned
  EXPECT_EQ(tier.stats().saves, 1);
}

TEST_F(UniverseTierTest, PersistFailureDegradesToMemory) {
  // disk_dir is a regular file, so every DMCU write-back must fail (works
  // under root too, where permission bits alone would not block writes).
  // The tier must degrade the key to in-memory — count the error, keep
  // serving the engine, leave no partial file — never crash.
  const fs::path blocked = tmp.path / "blocked";
  { std::ofstream(blocked) << "x"; }
  bpt::UniverseTier tier({blocked.string()});
  auto a = tier.acquire(text, cfg);
  ASSERT_TRUE(a.engine);
  (void)bpt::fold_type(*a.engine, plan, g);
  tier.release(a);  // last lease + growth => write-back attempt, fails
  EXPECT_EQ(tier.stats().saves, 0);
  EXPECT_EQ(tier.stats().persist_errors, 1);

  // The engine stays warm and usable; the sick backing path is dropped,
  // so later releases do not retry (exactly one persist error).
  auto b = tier.acquire(text, cfg);
  EXPECT_TRUE(b.warm);
  (void)bpt::fold_type(*b.engine, plan, g);
  tier.release(b);
  EXPECT_EQ(tier.stats().persist_errors, 1);
  // No partial DMCU or leftover .tmp anywhere near the blocked path.
  for (const auto& entry : fs::directory_iterator(tmp.path))
    EXPECT_EQ(entry.path(), blocked) << "unexpected file: " << entry.path();
}

TEST_F(UniverseTierTest, ContendedAcquireReleaseChurn) {
  // Churn: leases come and go while other threads acquire — exercises the
  // building/saving wait states under TSan.
  bpt::UniverseTier tier({tmp.path.string()});
  constexpr int kThreads = 6;
  constexpr int kIters = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      for (int it = 0; it < kIters; ++it) {
        auto lease = tier.acquire(text, cfg);
        (void)bpt::fold_type(*lease.engine, plan, g);
        tier.release(lease);
      }
    });
  for (auto& t : threads) t.join();
  const auto s = tier.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIters);
  EXPECT_EQ(s.builds + s.disk_hits, s.misses);
  EXPECT_EQ(s.keys, 1u);
}

}  // namespace
}  // namespace dmc
