// Wire-format audit layer (src/congest/wire.hpp + NetworkConfig::audit):
// the declared-size helpers match the real encodings bit for bit, every
// dist protocol passes the audit on its benchmark graphs, and each class
// of conformance violation (under-declared size, unregistered payload,
// broken round trip, zero-bit messages, header-starved fragmentation) is
// caught with an actionable diagnostic.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <stdexcept>

#include "congest/fragment.hpp"
#include "congest/network.hpp"
#include "congest/primitives.hpp"
#include "congest/wire.hpp"
#include "dist/baseline.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/hfreeness.hpp"
#include "dist/optimization.hpp"
#include "dist/optmarked.hpp"
#include "graph/generators.hpp"
#include "mso/eval.hpp"
#include "mso/formulas.hpp"
#include "seq/courcelle.hpp"

namespace dmc {
namespace {

using congest::Message;
using congest::Network;
using congest::NetworkConfig;
using congest::NodeCtx;
using mso::Sort;
namespace lib = mso::lib;

Graph btd_graph(unsigned seed, int n = 9, int d = 3, double p = 0.4) {
  gen::Rng rng(seed);
  return gen::random_bounded_treedepth(n, d, p, rng);
}

// --- declared-size helpers vs real encodings --------------------------------

TEST(WireBits, UintBitsMatchesCountBits) {
  const std::uint64_t cases[] = {0,   1,   2,    3,    4,         7,
                                 8,   255, 256,  1023, 1024,      (1ull << 31),
                                 (1ull << 32), (1ull << 63) - 1,  (1ull << 63),
                                 UINT64_MAX};
  for (std::uint64_t v : cases)
    EXPECT_EQ(audit::uint_bits(v), congest::count_bits(v)) << "v=" << v;
  EXPECT_EQ(audit::uint_bits(0), 1);
  EXPECT_EQ(audit::uint_bits(UINT64_MAX), 64);
}

TEST(WireBits, IdEncodingOccupiesIdBits) {
  // The "congest::id" codec (registered by congest/primitives.cpp) must
  // produce exactly id_bits(n) bits for any id valid in an n-node network,
  // including the degenerate n = 1.
  for (int n : {1, 2, 3, 4, 5, 16, 17, 100, 1000}) {
    const audit::WireContext ctx{n, 64};
    for (VertexId id : {0, n / 2, n - 1})
      EXPECT_EQ(audit::measured_bits(id, ctx), congest::id_bits(n))
          << "n=" << n << " id=" << id;
  }
}

TEST(WireBits, VarintCostsEightBitsPerSevenBitGroup) {
  EXPECT_EQ(audit::varuint_bits(0), 8);
  EXPECT_EQ(audit::varuint_bits(127), 8);
  EXPECT_EQ(audit::varuint_bits(128), 16);
  EXPECT_EQ(audit::varuint_bits(UINT64_MAX), 80);  // 10 groups
  audit::BitWriter w;
  w.put_varuint(300);
  EXPECT_EQ(w.bits(), audit::varuint_bits(300));
  audit::BitReader r(w.bytes(), w.bits());
  EXPECT_EQ(r.get_varuint(), 300u);
  EXPECT_EQ(r.remaining(), 0);
}

TEST(WireBits, ZigZagRoundTripsExtremes) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                         INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(audit::unzigzag(audit::zigzag(v)), v) << v;
    audit::BitWriter w;
    w.put_varint(v);
    audit::BitReader r(w.bytes(), w.bits());
    EXPECT_EQ(r.get_varint(), v) << v;
  }
}

// --- send-time validation ---------------------------------------------------

class OneShotSender : public congest::NodeProgram {
 public:
  explicit OneShotSender(Message msg) : msg_(std::move(msg)) {}
  void on_round(NodeCtx& ctx) override {
    if (!sent_ && ctx.degree() > 0) {
      sent_ = true;
      ctx.send(0, msg_);
    }
  }
  bool done(const NodeCtx&) const override { return sent_; }

 private:
  Message msg_;
  bool sent_ = false;
};

class Sink : public congest::NodeProgram {
 public:
  void on_round(NodeCtx&) override {}
  bool done(const NodeCtx&) const override { return true; }
};

/// Runs `msg` over one edge of a 2-path under `cfg`.
void send_one(Message msg, NetworkConfig cfg) {
  Network net(gen::path(2), cfg);
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  programs.push_back(std::make_unique<OneShotSender>(std::move(msg)));
  programs.push_back(std::make_unique<Sink>());
  net.run(programs);
}

TEST(AuditSend, RejectsNonPositiveDeclaredBits) {
  try {
    send_one(Message(std::int64_t{5}, 0), {});
    FAIL() << "bits = 0 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("positive bit size"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(send_one(Message(std::int64_t{5}, -3), {}),
               std::invalid_argument);
}

struct LiarMsg {
  std::uint32_t payload = 0;
};

TEST(AuditSend, CatchesUnderDeclaration) {
  audit::register_codec<LiarMsg>(
      "test::LiarMsg",
      [](const LiarMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_uint(m.payload, 10);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return LiarMsg{static_cast<std::uint32_t>(r.get_uint(10))};
      },
      [](const LiarMsg& a, const LiarMsg& b) { return a.payload == b.payload; });
  // Declares 4 bits, encodes 10: honest bandwidth accounting would charge
  // 10. The audit must name the type and both sizes.
  try {
    send_one(Message(LiarMsg{900}, 4), {.audit = true});
    FAIL() << "under-declaration must be caught";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test::LiarMsg"), std::string::npos) << what;
    EXPECT_NE(what.find("under-declares"), std::string::npos) << what;
    EXPECT_NE(what.find("encoded 10 bits"), std::string::npos) << what;
    EXPECT_NE(what.find("declared 4 bits"), std::string::npos) << what;
  }
  // The same message audits clean when declared honestly.
  send_one(Message(LiarMsg{900}, 10), {.audit = true});
}

struct OrphanMsg {
  int x = 0;
};

TEST(AuditSend, CatchesUnregisteredPayloadType) {
  try {
    send_one(Message(OrphanMsg{1}, 8), {.audit = true});
    FAIL() << "unregistered payload must be caught";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no registered wire codec"), std::string::npos) << what;
    EXPECT_NE(what.find("OrphanMsg"), std::string::npos) << what;
  }
  // Without audit mode the same send is accepted (cost-by-declaration).
  send_one(Message(OrphanMsg{1}, 8), {});
}

struct GarblerMsg {
  int x = 0;
};

TEST(AuditSend, CatchesRoundTripMismatch) {
  audit::register_codec<GarblerMsg>(
      "test::GarblerMsg",
      [](const GarblerMsg& m, const audit::WireContext&, audit::BitWriter& w) {
        w.put_uint(static_cast<std::uint64_t>(m.x), 8);
      },
      [](const audit::WireContext&, audit::BitReader& r) {
        return GarblerMsg{static_cast<int>(r.get_uint(8)) + 1};  // corrupts
      },
      [](const GarblerMsg& a, const GarblerMsg& b) { return a.x == b.x; });
  try {
    send_one(Message(GarblerMsg{3}, 8), {.audit = true});
    FAIL() << "round-trip mismatch must be caught";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("round trip"), std::string::npos)
        << e.what();
  }
}

// --- protocols under audit --------------------------------------------------

void expect_fully_audited(const Network& net) {
  EXPECT_GT(net.stats().messages, 0);
  EXPECT_EQ(net.stats().audited_messages, net.stats().messages);
  EXPECT_GT(net.stats().encoded_bits, 0);
  EXPECT_LE(net.stats().encoded_bits, net.stats().total_bits);
  EXPECT_NE(net.audit_digest(), 0u);
}

TEST(AuditProtocols, PrimitivesAuditClean) {
  const Graph g = btd_graph(3, 10, 3, 0.5);
  Network net(g, {.id_seed = 7, .audit = true});
  const auto leader = congest::run_leader_election(net, 2 * g.num_vertices());
  EXPECT_EQ(leader.leader, 0);
  const auto tree = congest::run_bfs_tree(net, 2 * g.num_vertices());
  congest::run_broadcast(net, tree, -123456789);
  congest::run_aggregate(net, tree, std::vector<std::int64_t>(g.num_vertices(), -7));
  expect_fully_audited(net);
}

TEST(AuditProtocols, DecisionAuditClean) {
  for (unsigned seed = 0; seed < 3; ++seed) {
    const Graph g = btd_graph(seed, 9, 3, 0.35);
    Network net(g, {.id_seed = seed + 1, .audit = true});
    const auto outcome = dist::run_decision(net, lib::triangle_free(), 3);
    ASSERT_FALSE(outcome.treedepth_exceeded);
    EXPECT_EQ(outcome.holds, mso::evaluate(g, *lib::triangle_free()));
    expect_fully_audited(net);
  }
}

TEST(AuditProtocols, OptimizationAuditClean) {
  const Graph g = btd_graph(42, 9, 3, 0.4);
  Network net(g, {.audit = true});
  const auto outcome =
      dist::run_maximize(net, lib::independent_set(), "S", Sort::VertexSet, 3);
  ASSERT_FALSE(outcome.treedepth_exceeded);
  ASSERT_TRUE(outcome.best_weight.has_value());
  const auto oracle =
      seq::maximize(g, lib::independent_set(), "S", Sort::VertexSet);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_EQ(*outcome.best_weight, oracle->weight);
  expect_fully_audited(net);
}

TEST(AuditProtocols, CountingAuditClean) {
  const Graph g = btd_graph(60, 8, 3, 0.4);
  Network net(g, {.audit = true});
  const auto outcome = dist::run_count(net, lib::independent_set_indicator(),
                                       {{"S", Sort::VertexSet}}, 3);
  ASSERT_FALSE(outcome.treedepth_exceeded);
  expect_fully_audited(net);
}

TEST(AuditProtocols, OptMarkedAuditClean) {
  Graph g = btd_graph(80, 8, 3, 0.4);
  const auto opt =
      seq::maximize(g, lib::independent_set(), "S", Sort::VertexSet);
  ASSERT_TRUE(opt.has_value());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (opt->vertices[v]) g.set_vertex_label("marked", v);
  Network net(g, {.audit = true});
  const auto outcome =
      dist::run_optmarked(net, lib::independent_set(), "S", Sort::VertexSet, 3);
  ASSERT_FALSE(outcome.treedepth_exceeded);
  EXPECT_TRUE(outcome.satisfies);
  EXPECT_TRUE(outcome.is_optimal);
  expect_fully_audited(net);
}

TEST(AuditProtocols, BaselineAuditClean) {
  const Graph g = btd_graph(5, 8, 3, 0.5);
  Network net(g, {.audit = true});
  const auto outcome = dist::run_gather_baseline(net, lib::triangle_free());
  EXPECT_EQ(outcome.holds, mso::evaluate(g, *lib::triangle_free()));
  expect_fully_audited(net);
}

TEST(AuditProtocols, HFreenessAuditClean) {
  NetworkConfig cfg;
  cfg.audit = true;
  const auto out =
      dist::run_h_freeness_grid(gen::grid(5, 5), 5, 5, gen::path(3), 4, cfg);
  EXPECT_FALSE(out.h_free);  // every grid contains P3
}

// --- fragmentation accounting -----------------------------------------------

class FragmentingSender : public congest::NodeProgram {
 public:
  FragmentingSender(std::int64_t value, long bits)
      : value_(value), bits_(bits) {}
  void on_round(NodeCtx& ctx) override {
    if (!queued_) {
      queued_ = true;
      sender_.enqueue(0, value_, bits_);
    }
    sender_.pump(ctx);
  }
  bool done(const NodeCtx&) const override { return queued_ && sender_.idle(); }

 private:
  std::int64_t value_;
  long bits_;
  congest::FragmentSender sender_;
  bool queued_ = false;
};

class FragmentReceiver : public congest::NodeProgram {
 public:
  void on_round(NodeCtx& ctx) override {
    if (auto payload = congest::poll_fragment(ctx, 0))
      received_ = std::any_cast<std::int64_t>(*payload);
  }
  bool done(const NodeCtx&) const override { return received_ != 0; }
  std::int64_t received_ = 0;
};

long fragment_messages(long k_bits, int min_bandwidth, bool audit = true) {
  NetworkConfig cfg;
  cfg.min_bandwidth = min_bandwidth;
  cfg.audit = audit;
  Network net(gen::path(2), cfg);
  std::vector<std::unique_ptr<congest::NodeProgram>> programs;
  programs.push_back(std::make_unique<FragmentingSender>(99, k_bits));
  auto receiver = std::make_unique<FragmentReceiver>();
  FragmentReceiver* rx = receiver.get();
  programs.push_back(std::move(receiver));
  net.run(programs);
  EXPECT_EQ(rx->received_, 99);
  return net.stats().messages;
}

TEST(Fragmentation, RoundCostIsCeilOfPayloadOverUsableBandwidth) {
  const int header = congest::FragmentSender::kHeaderBits;
  // k >= 8: the carried test value (99) honestly needs 8 bits, and the
  // logical declaration must cover the true encoding.
  for (const auto& [k, B] : std::vector<std::pair<long, int>>{
           {8, 32}, {24, 32}, {25, 32}, {100, 32}, {100, 64}, {1000, 32}}) {
    const long expected = (k + (B - header) - 1) / (B - header);
    EXPECT_EQ(fragment_messages(k, B), expected) << "k=" << k << " B=" << B;
  }
}

TEST(Fragmentation, PumpRejectsHeaderStarvedBandwidth) {
  // n = 2 gives B = max(min_bandwidth, 2 * 1); min_bandwidth = 8 == header.
  try {
    fragment_messages(20, congest::FragmentSender::kHeaderBits,
                      /*audit=*/false);
    FAIL() << "pump must reject bandwidth <= header";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk header"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dmc
