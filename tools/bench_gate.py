#!/usr/bin/env python3
"""Benchmark regression gate: diffs fresh BENCH_<exp>.json against baselines.

The committed baselines live in bench/baselines/ (one BENCH_<exp>.json per
experiment, produced by tools/collect_bench.py). This script re-compares a
freshly collected set of the same files and fails when a *deterministic*
measurement drifts — round counts, message/bit totals, table sizes — since
those are simulator outputs that must not change silently. Wall-clock
fields (real_time, cpu_time, iterations, *_ns and friends) are noisy across
machines and are therefore ignored unless --timing-tolerance is given.

Row matching: rows of one experiment are keyed by their identity fields
(every string-valued cell, e.g. the benchmark name or family label) plus
their ordinal among rows with the same key, so sweeps over numeric
parameters still line up positionally within a series.

Usage:
    tools/bench_gate.py --current bench-out --baseline bench/baselines
        [--tolerance 0.0] [--timing-tolerance 0.25] [--warn-only]

Exit status: 0 when everything within tolerance (or --warn-only), 1 on
regression, 2 on usage/IO errors.
"""

import argparse
import glob
import json
import math
import os
import re
import sys

# Fields whose values are wall-clock / machine dependent. Compared only
# when --timing-tolerance is set; never compared exactly.
TIMING_FIELD = re.compile(
    r"(^|[._])(real_time|cpu_time|iterations|time_unit|ns|us|ms|s|seconds"
    r"|speedup)$"
    r"|(_ns|_us|_ms|_s|_seconds)(\.(count|sum|max|p50|p95))?$"
    r"|(busy|idle|wall|speedup)"
)


def is_timing_field(name):
    return TIMING_FIELD.search(name) is not None


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_gate: error: cannot read {path}: {e}")
    if not isinstance(doc, dict) or "rows" not in doc:
        sys.exit(f"bench_gate: error: {path} is not a collect_bench.py file")
    return doc


def row_key(row):
    """Identity of a row = its string-valued cells, in field order."""
    return tuple((k, v) for k, v in sorted(row.items())
                 if isinstance(v, str) and k != "time_unit")


def index_rows(rows):
    """Maps (key, ordinal-within-key) -> row, preserving sweep order."""
    out, seen = {}, {}
    for row in rows:
        key = row_key(row)
        n = seen.get(key, 0)
        seen[key] = n + 1
        out[(key, n)] = row
    return out


def fmt_key(key, ordinal):
    label = ", ".join(f"{k}={v}" for k, v in key) if key else "<numeric row>"
    return f"[{label}] #{ordinal}"


def close(a, b, rel):
    if a == b:
        return True
    if not (isinstance(a, (int, float)) and isinstance(b, (int, float))):
        return False
    if math.isnan(a) or math.isnan(b):
        return False
    denom = max(abs(a), abs(b))
    return denom > 0 and abs(a - b) / denom <= rel


class Gate:
    def __init__(self, warn_only):
        self.warn_only = warn_only
        self.failures = 0
        self.warnings = 0

    def fail(self, msg):
        if self.warn_only:
            self.warnings += 1
            print(f"bench_gate: WARN: {msg}")
        else:
            self.failures += 1
            print(f"bench_gate: FAIL: {msg}")

    def warn(self, msg):
        self.warnings += 1
        print(f"bench_gate: warn: {msg}")


def compare_experiment(gate, name, base, cur, tol, timing_tol):
    base_rows = index_rows(base["rows"])
    cur_rows = index_rows(cur["rows"])
    for slot in sorted(base_rows.keys() - cur_rows.keys(), key=str):
        gate.fail(f"{name}: row {fmt_key(*slot)} missing from current run")
    for slot in sorted(cur_rows.keys() - base_rows.keys(), key=str):
        gate.warn(f"{name}: new row {fmt_key(*slot)} not in baseline "
                  "(update bench/baselines/ if intentional)")
    for slot in sorted(base_rows.keys() & cur_rows.keys(), key=str):
        b_row, c_row = base_rows[slot], cur_rows[slot]
        for field in sorted(b_row.keys() | c_row.keys()):
            b, c = b_row.get(field), c_row.get(field)
            timing = is_timing_field(field)
            if b is None or c is None:
                # Metric fields appear/disappear with DMC_BENCH_METRICS;
                # missing deterministic columns are real schema drift.
                if not timing and not is_metric_field(field):
                    side = "current" if c is None else "baseline"
                    gate.fail(f"{name}: {fmt_key(*slot)}: field '{field}' "
                              f"missing from {side}")
                continue
            if timing:
                if timing_tol is not None and not close(b, c, timing_tol):
                    gate.fail(f"{name}: {fmt_key(*slot)}: timing field "
                              f"'{field}' drifted {b} -> {c} "
                              f"(> {timing_tol:.0%})")
                continue
            if not close(b, c, tol):
                gate.fail(f"{name}: {fmt_key(*slot)}: '{field}' changed "
                          f"{b} -> {c}" +
                          (f" (tolerance {tol:.0%})" if tol else ""))


def is_metric_field(name):
    """Registry snapshot fields are dotted metric names (see metrics.hpp)."""
    return name.startswith(("congest.", "transport.", "par.", "bpt.",
                            "serve."))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="directory with freshly collected BENCH_*.json")
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory with committed baselines")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="relative tolerance for deterministic fields "
                             "(default: exact)")
    parser.add_argument("--timing-tolerance", type=float, default=None,
                        help="relative tolerance for wall-clock fields "
                             "(default: timing fields are not compared)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (PR mode)")
    args = parser.parse_args()

    base_files = {os.path.basename(p): p
                  for p in glob.glob(os.path.join(args.baseline,
                                                  "BENCH_*.json"))}
    cur_files = {os.path.basename(p): p
                 for p in glob.glob(os.path.join(args.current,
                                                 "BENCH_*.json"))}
    if not base_files:
        sys.exit(f"bench_gate: error: no BENCH_*.json in {args.baseline}")
    if not cur_files:
        sys.exit(f"bench_gate: error: no BENCH_*.json in {args.current}")

    gate = Gate(args.warn_only)
    for name in sorted(base_files.keys() - cur_files.keys()):
        gate.fail(f"{name}: present in baseline but not produced by this run")
    for name in sorted(cur_files.keys() - base_files.keys()):
        gate.warn(f"{name}: new experiment without a committed baseline")
    for name in sorted(base_files.keys() & cur_files.keys()):
        compare_experiment(gate, name, load(base_files[name]),
                           load(cur_files[name]), args.tolerance,
                           args.timing_tolerance)

    checked = len(base_files.keys() & cur_files.keys())
    verdict = ("ok" if gate.failures == 0 else
               f"{gate.failures} regression(s)")
    print(f"bench_gate: {checked} experiment file(s) checked, "
          f"{gate.warnings} warning(s): {verdict}")
    sys.exit(1 if gate.failures else 0)


if __name__ == "__main__":
    main()
