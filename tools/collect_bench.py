#!/usr/bin/env python3
"""Aggregates machine-readable benchmark output into BENCH_<exp>.json files.

Every bench binary emits JSON lines (one object per table row or timing)
when $DMC_BENCH_JSON names a file — see bench/bench_util.hpp. This script
either runs the whole suite that way (--run) or consumes existing .jsonl
files, groups the rows by experiment tag (the "E<n>" prefix of the
experiment string), and writes one BENCH_<exp>.json per experiment:

    {"experiment": "E8", "title": "...", "rows": [...]}

Usage:
    tools/collect_bench.py --run [--bench-dir build/bench] [--out-dir .]
    tools/collect_bench.py file1.jsonl [file2.jsonl ...] [--out-dir .]

Exit status is non-zero if a bench binary fails (--run) or a line cannot
be parsed, so CI treats truncated output as an error rather than silently
publishing partial numbers.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_suite(bench_dir):
    """Runs every binary in bench_dir with DMC_BENCH_JSON; returns lines."""
    lines = []
    binaries = sorted(
        os.path.join(bench_dir, name)
        for name in os.listdir(bench_dir)
        if os.access(os.path.join(bench_dir, name), os.X_OK)
        and not os.path.isdir(os.path.join(bench_dir, name))
    )
    if not binaries:
        sys.exit(f"error: no executables in {bench_dir}")
    for binary in binaries:
        with tempfile.NamedTemporaryFile(mode="r", suffix=".jsonl") as tmp:
            env = dict(os.environ, DMC_BENCH_JSON=tmp.name)
            print(f"collect_bench: running {binary}", file=sys.stderr)
            result = subprocess.run([binary], env=env, stdout=subprocess.DEVNULL)
            if result.returncode != 0:
                sys.exit(
                    f"error: {binary} exited with {result.returncode}"
                )
            produced = [
                (f"{binary}:{tmp.name}", i + 1, line)
                for i, line in enumerate(tmp.read().splitlines())
                if line.strip()
            ]
            if not produced:
                sys.exit(
                    f"error: {binary} exited 0 but wrote no JSON rows to "
                    "$DMC_BENCH_JSON (truncated run, or the binary does not "
                    "use bench_util.hpp)"
                )
            lines.extend(produced)
    return lines


def read_files(paths):
    lines = []
    for path in paths:
        with open(path) as f:
            lines.extend(
                (path, i + 1, line)
                for i, line in enumerate(f.read().splitlines())
                if line.strip()
            )
    return lines


def experiment_tag(experiment):
    """'E8: BPT type universe ...' -> 'E8' (sanitized fallback otherwise)."""
    head = experiment.split(":", 1)[0].strip()
    if head and all(c.isalnum() or c in "_-" for c in head):
        return head
    return "misc"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="existing .jsonl files")
    parser.add_argument("--run", action="store_true",
                        help="run every binary in --bench-dir first")
    parser.add_argument("--bench-dir", default="build/bench")
    parser.add_argument("--out-dir", default=".")
    args = parser.parse_args()

    if args.run == bool(args.files):
        parser.error("pass either --run or one or more .jsonl files")
    lines = run_suite(args.bench_dir) if args.run else read_files(args.files)

    by_exp = {}
    for origin, lineno, line in lines:
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"error: {origin}:{lineno}: bad JSON line: {e}")
        if not isinstance(row, dict):
            sys.exit(f"error: {origin}:{lineno}: JSONL row is not an object: "
                     f"{line.strip()[:80]}")
        experiment = row.pop("experiment", "")
        if not row:
            sys.exit(f"error: {origin}:{lineno}: JSONL row has no data "
                     f"fields (only an experiment tag); refusing to publish "
                     "an empty measurement")
        tag = experiment_tag(experiment)
        entry = by_exp.setdefault(tag, {"experiment": tag,
                                        "title": experiment, "rows": []})
        entry["rows"].append(row)

    if not by_exp:
        sys.exit("error: no benchmark rows collected")
    os.makedirs(args.out_dir, exist_ok=True)
    for tag, entry in sorted(by_exp.items()):
        out_path = os.path.join(args.out_dir, f"BENCH_{tag}.json")
        with open(out_path, "w") as f:
            json.dump(entry, f, indent=2)
            f.write("\n")
        print(f"collect_bench: wrote {out_path} ({len(entry['rows'])} rows)")


if __name__ == "__main__":
    main()
