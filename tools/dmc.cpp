// dmc — command-line front end for the library.
//
//   dmc decide   --formula "<mso>" (--graph file.dimacs | --family NAME)
//                [--dist D] [--trace FILE[:jsonl|chrome]] [--audit]
//   dmc maximize --formula "<mso>" --var S --sort vset|eset (--graph ...)
//                [--dist D] [--trace ...] [--audit]
//   dmc minimize ... (same as maximize)
//   dmc count    --formula "<mso>" --vars S:vset[,T:vset...] (--graph ...)
//                [--dist D] [--trace ...] [--audit]
//   dmc treedepth (--graph ... | --family NAME)
//
// --graph reads the DIMACS-like format of src/graph/io.hpp from a file
// ("-" = stdin). --family builds a named generator instance, e.g.
// "path:12", "cycle:9", "grid:4x5", "star:8", "btd:20:3".
// Without --dist the sequential engine is used; with --dist D the full
// distributed pipeline runs in the CONGEST simulator with treedepth
// budget D, a per-phase round/bit summary is printed, and --trace
// additionally streams the round-level trace to FILE (jsonl by default;
// the :chrome suffix writes a chrome://tracing-loadable flame view, see
// docs/OBSERVABILITY.md).
// --audit (needs --dist) runs the model-conformance battery instead of a
// single execution: wire-format audit on every message plus determinism,
// order-obliviousness, and id-obliviousness dual runs (see
// docs/STATIC_ANALYSIS.md); exits 5 if any check diverges.
// --faults SPEC (needs --dist) injects deterministic link/node faults, e.g.
// "drop=0.1,dup=0.05,crash=3@r20,seed=42" (grammar in congest/faults.hpp),
// and layers the reliable transport under the protocols unless the spec
// says transport=raw. Degraded endings are structured, never silently
// wrong: exit 6 = round budget exhausted (diagnostic names the stalled
// phase), exit 7 = crash-stop faults occurred. See docs/ROBUSTNESS.md.
// --threads N (needs --dist) sets the simulator/engine worker count
// (default: hardware concurrency; 1 = the exact legacy serial path);
// verdicts and traces are thread-count-invariant, see docs/PERFORMANCE.md.
// --universe-cache DIR (needs --dist) persists the type universe under
// DIR ("auto" = $DMC_CACHE_DIR / $XDG_CACHE_HOME/dmc / ~/.cache/dmc) so
// repeated runs of the same formula skip universe construction.
// --churn SCRIPT (needs --dist) runs the query as a sequence of epochs
// under deterministic graph churn (grammar in churn/script.hpp, e.g.
// "add=0-5,del=2-3;random=8,seed=42"): after each mutation batch the
// elimination tree is repaired incrementally and only affected root-path
// BPT tables are re-folded, digest-checked per epoch against a
// from-scratch oracle unless the script says verify=off. Composes with
// --faults (crash/loss mid-repair degrades in a structured way and falls
// back to a full recompute). Exit 5 = incremental/oracle digest mismatch,
// exit 9 = at least one epoch ended repair-degraded. See
// docs/ROBUSTNESS.md "Churn and repair".
// --flight-record DIR (needs --dist) persists the network's always-on
// flight-recorder ring — the last ~512 trace/fault/phase events — to
// DIR/dmc-flight.jsonl whenever the run ends degraded (exit 5–9), so a
// crashed or stalled run leaves its last-events story behind without any
// tracing enabled. See docs/OBSERVABILITY.md "Flight recorder".
// --metrics FILE (needs --dist) installs the aggregate metrics registry
// (src/metrics) for the run — congestion histograms, transport counters,
// pool and engine statistics — and writes a Prometheus-text snapshot to
// FILE ("-" = stdout) when the run ends, tagged with the RunOutcome (so
// degraded runs still flush). The summary also prints a "metrics check"
// line asserting the counter totals equal NetworkStats (which the trace
// check in turn ties to the obs trace sums). --metrics-interval R
// additionally rewrites FILE every R simulated rounds, the
// textfile-collector pattern for watching long runs. Composes with
// --faults, --audit (snapshot only: the conformance battery runs several
// networks, so per-network reconciliation is skipped), and --threads.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "bpt/universe_cache.hpp"
#include "churn/engine.hpp"
#include "churn/script.hpp"
#include "congest/conformance.hpp"
#include "congest/faults.hpp"
#include "congest/network.hpp"
#include "dist/counting.hpp"
#include "dist/decision.hpp"
#include "dist/optimization.hpp"
#include "metrics/metrics.hpp"
#include "mso/lower.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mso/parser.hpp"
#include "obs/atomic_file.hpp"
#include "obs/buffer.hpp"
#include "obs/chrome.hpp"
#include "obs/jsonl.hpp"
#include "obs/summary.hpp"
#include "seq/courcelle.hpp"
#include "td/elimination_forest.hpp"

using namespace dmc;

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: dmc <decide|maximize|minimize|count|treedepth>\n"
               "           [--formula STR] [--graph FILE|-] [--family SPEC]\n"
               "           [--var NAME --sort vset|eset] [--vars N:S,...]\n"
               "           [--dist D] [--trace FILE[:jsonl|chrome]] [--audit]\n"
               "           [--faults drop=P,dup=P,corrupt=P,reorder=P,"
               "crash=ID@rR,seed=N[,transport=raw]]\n"
               "           [--threads N] [--universe-cache DIR|auto]\n"
               "           [--sparse-flood]\n"
               "           [--metrics FILE|-] [--metrics-interval R]\n"
               "           [--flight-record DIR]\n"
               "           [--churn SCRIPT e.g. add=0-5,del=2-3;random=8,"
               "seed=42]\n");
  std::exit(2);
}

/// Strict integer parse: the whole token must be a number (std::stoi's
/// exceptions and trailing-garbage acceptance both turn into usage errors,
/// e.g. "--family path:abc" or "--family grid:4").
int parse_int(const std::string& token, const char* what) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(token, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (token.empty() || used != token.size())
    usage((std::string(what) + " expects an integer, got '" + token + "'")
              .c_str());
  return value;
}

/// The family grammar lives in gen::family (shared with the dmcd serving
/// protocol); the CLI only maps its spec errors onto usage().
Graph family_graph(const std::string& spec) {
  try {
    return gen::family(spec);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

mso::Sort parse_sort(const std::string& s) {
  if (s == "vset") return mso::Sort::VertexSet;
  if (s == "eset") return mso::Sort::EdgeSet;
  usage("--sort must be vset or eset");
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  const std::string& get(const std::string& key) const {
    auto it = options.find(key);
    if (it == options.end()) usage(("missing --" + key).c_str());
    return it->second;
  }
};

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("options start with --");
    if (key == "--audit" || key == "--sparse-flood") {  // boolean flags
      args.options[key.substr(2)] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for " + key).c_str());
    args.options[key.substr(2)] = argv[++i];
  }
  return args;
}

Graph load_graph(const Args& args) {
  if (args.has("family")) return family_graph(args.get("family"));
  const std::string& path = args.get("graph");
  if (path == "-") return io::read_dimacs(std::cin);
  std::ifstream in(path);
  if (!in) usage(("cannot open " + path).c_str());
  return io::read_dimacs(in);
}

std::optional<int> dist_budget(const Args& args) {
  if (!args.has("dist")) {
    if (args.has("trace")) usage("--trace requires --dist");
    if (args.has("audit")) usage("--audit requires --dist");
    if (args.has("faults")) usage("--faults requires --dist");
    if (args.has("threads")) usage("--threads requires --dist");
    if (args.has("universe-cache")) usage("--universe-cache requires --dist");
    if (args.has("metrics")) usage("--metrics requires --dist");
    if (args.has("churn")) usage("--churn requires --dist");
    if (args.has("sparse-flood")) usage("--sparse-flood requires --dist");
    if (args.has("flight-record")) usage("--flight-record requires --dist");
    return std::nullopt;
  }
  if (args.has("audit") && args.has("flight-record"))
    usage("--flight-record needs a single run; the audit battery runs "
          "several networks. Drop --audit");
  if (args.has("audit") && args.has("trace"))
    usage("--audit replaces the trace sink; drop --trace");
  if (args.has("audit") && args.has("faults"))
    usage("--audit runs the fault-free conformance battery; drop --faults");
  if (args.has("metrics-interval") && !args.has("metrics"))
    usage("--metrics-interval requires --metrics");
  if (args.has("churn")) {
    // The churn engine runs one network per epoch (plus oracle runs), so
    // single-run plumbing does not compose.
    if (args.has("audit")) usage("--audit does not compose with --churn");
    if (args.has("trace")) usage("--trace does not compose with --churn");
    if (args.has("universe-cache"))
      usage("--universe-cache does not compose with --churn "
            "(the engine keeps its own warm universe)");
    if (args.has("metrics-interval"))
      usage("--metrics-interval does not compose with --churn");
    if (args.has("sparse-flood"))
      usage("--sparse-flood does not compose with --churn "
            "(the engine repairs trees incrementally)");
  }
  return parse_int(args.get("dist"), "--dist");
}

/// --sparse-flood: change-only flooding in the elimination-tree prologue
/// (see dist::ElimTreeOptions::sparse_flood). Same tree, same rounds,
/// fewer messages; pairs with the sparse scheduler on huge instances.
dist::ElimTreeOptions tree_options(const Args& args) {
  dist::ElimTreeOptions opts;
  opts.sparse_flood = args.has("sparse-flood");
  return opts;
}

/// --threads: worker count for the simulated rounds and engine folds.
/// Omitted = 0 = hardware concurrency; 1 = the exact legacy serial path.
int thread_count(const Args& args) {
  return args.has("threads") ? parse_int(args.get("threads"), "--threads") : 0;
}

/// --universe-cache wiring. When active, owns the engine the distributed
/// run should use: warm-loaded from disk when a valid cache file exists,
/// freshly built (and saved back after the run) otherwise.
struct UniverseCache {
  std::optional<bpt::Engine> engine;
  std::string path;
  bool warm = false;

  bpt::Engine* get() { return engine ? &*engine : nullptr; }
  void save() {
    if (engine && !path.empty() && !warm)
      warm = bpt::save_universe_cache(*engine, path);
  }
};

UniverseCache make_universe_cache(
    const Args& args, const mso::FormulaPtr& formula,
    const std::vector<std::pair<std::string, mso::Sort>>& frees) {
  UniverseCache uc;
  if (!args.has("universe-cache")) return uc;
  std::string dir = args.get("universe-cache");
  if (dir == "auto") dir = bpt::default_universe_cache_dir();
  const mso::FormulaPtr lowered = mso::lower(formula, frees);
  uc.engine.emplace(bpt::config_for(*lowered, frees));
  if (dir.empty()) return uc;  // no usable cache dir: run uncached
  uc.path =
      bpt::universe_cache_path(dir, mso::to_string(*lowered), uc.engine->config());
  uc.warm = bpt::load_universe_cache(*uc.engine, uc.path);
  return uc;
}

/// --metrics wiring: owns the registry for the whole run and installs it
/// as the process-global one, so every layer — the network (via the
/// NetworkConfig fallback), the par pool, the BPT engine, the universe
/// cache — records into it. Must be created before the engine/network
/// (they resolve their handles at construction); the destructor
/// uninstalls the global pointer before the registry dies.
struct MetricsSetup {
  metrics::Registry registry;
  std::string path;  // --metrics FILE; "-" = stdout
  int interval = 0;  // --metrics-interval R; 0 = final snapshot only

  MetricsSetup() { metrics::set_global(&registry); }
  ~MetricsSetup() { metrics::set_global(nullptr); }
  MetricsSetup(const MetricsSetup&) = delete;
  MetricsSetup& operator=(const MetricsSetup&) = delete;

  /// Writes the Prometheus-text snapshot, tagged with the run status
  /// ("running" for periodic dumps, the RunOutcome status — or "audit" —
  /// at the end). Rewrites the whole file each time: the periodic dump is
  /// the textfile-collector pattern, last snapshot wins. Publication is
  /// obs::write_file_atomic (temp+rename, the DMCU cache idiom): a
  /// concurrent scraper either sees the previous complete snapshot or the
  /// new one, never a torn file.
  void write_snapshot(const std::string& status) {
    std::ostringstream body;
    body << "# dmc metrics snapshot: run_status=" << status << "\n";
    registry.write_prometheus(body);
    if (path == "-") {
      std::fputs(body.str().c_str(), stdout);
      return;
    }
    std::string err;
    if (!obs::write_file_atomic(path, body.str(), &err))
      std::fprintf(stderr, "warning: cannot publish metrics file %s: %s\n",
                   path.c_str(), err.c_str());
  }
};

std::unique_ptr<MetricsSetup> make_metrics_setup(const Args& args) {
  if (!args.has("metrics")) return nullptr;
  auto ms = std::make_unique<MetricsSetup>();
  ms->path = args.get("metrics");
  if (ms->path.empty()) usage("--metrics needs a file name");
  if (args.has("metrics-interval")) {
    ms->interval = parse_int(args.get("metrics-interval"), "--metrics-interval");
    if (ms->interval <= 0) usage("--metrics-interval must be positive");
  }
  return ms;
}

/// Wires --metrics-interval into the network config (the network drives
/// the periodic rewrite off its simulated-round clock).
void apply_metrics_options(MetricsSetup* ms, congest::NetworkConfig& cfg) {
  if (ms == nullptr || ms->interval <= 0) return;
  cfg.metrics_interval = ms->interval;
  cfg.metrics_flush = [ms](long) { ms->write_snapshot("running"); };
}

/// Reconciliation assertion (the metrics twin of the trace check): the
/// registry's counter totals must exactly equal the NetworkStats counters
/// the simulator maintained independently — and the trace check already
/// ties NetworkStats to the obs round-event sums, closing the triangle.
void print_metrics_check(metrics::Registry& reg,
                         const congest::NetworkStats& s) {
  const bool ok =
      reg.counter("congest.rounds").value() == s.rounds &&
      reg.counter("congest.messages").value() == s.messages &&
      reg.counter("congest.bits").value() == s.total_bits &&
      reg.counter("transport.frames").value() == s.frames &&
      reg.counter("transport.frame_bits").value() == s.frame_bits &&
      reg.counter("transport.marker_frames").value() == s.marker_frames &&
      reg.counter("transport.retransmissions").value() == s.retransmissions;
  std::printf("metrics check: %s (registry: rounds=%lld messages=%lld "
              "bits=%lld frames=%lld)\n",
              ok ? "ok, counters == NetworkStats" : "MISMATCH",
              reg.counter("congest.rounds").value(),
              reg.counter("congest.messages").value(),
              reg.counter("congest.bits").value(),
              reg.counter("transport.frames").value());
}

/// End-of-run metrics flush for the non-audit dist paths: final snapshot
/// tagged with the RunOutcome status plus the reconciliation line.
/// Degraded runs flush too — that is the point of tagging.
void finish_metrics(MetricsSetup* ms, const congest::NetworkStats& stats,
                    const congest::RunOutcome& run) {
  if (ms == nullptr) return;
  ms->write_snapshot(congest::to_string(run.status));
  print_metrics_check(ms->registry, stats);
}

/// Wires --faults into the network config. Phase tracking is forced on so
/// degraded outcomes can name the stalled pipeline stage.
void apply_fault_options(const Args& args, congest::NetworkConfig& cfg) {
  if (!args.has("faults")) return;
  try {
    cfg.faults = congest::parse_fault_plan(args.get("faults"));
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  cfg.track_phases = true;
}

/// Degraded-run reporting: diagnostic to stderr (naming the stalled phase
/// and the crashed nodes) and the dedicated exit code — 6 for an exhausted
/// round budget, 7 for crash-stop faults.
int report_degraded(const congest::RunOutcome& run) {
  const std::string where = run.stalled_phase.empty()
                                ? std::string()
                                : " in phase " + run.stalled_phase;
  if (run.status == congest::RunStatus::kCrashed) {
    std::string nodes;
    for (VertexId v : run.crashed)
      nodes += (nodes.empty() ? "" : ",") + std::to_string(v);
    std::fprintf(stderr,
                 "degraded: %zu node(s) crash-stopped [%s]%s after %ld "
                 "rounds; outputs untrusted\n",
                 run.crashed.size(), nodes.c_str(), where.c_str(), run.rounds);
    return 7;
  }
  std::fprintf(stderr,
               "degraded: round budget exhausted%s after %ld rounds "
               "(%ld protocol steps); no verdict\n",
               where.c_str(), run.rounds, run.virtual_rounds);
  return 6;
}

/// --flight-record DIR: persists a degraded run's flight-recorder ring
/// (already serialized to JSONL) as DIR/dmc-flight.jsonl via temp+rename.
/// Only degraded endings (exit 5-9) dump — a healthy run leaves nothing.
void maybe_dump_flight(const Args& args, int rc, const std::string& jsonl) {
  if (rc < 5 || jsonl.empty() || !args.has("flight-record")) return;
  const std::string dir = args.get("flight-record");
  if (dir.empty()) usage("--flight-record needs a directory");
  const std::string path = dir + "/dmc-flight.jsonl";
  std::string err;
  if (!obs::write_file_atomic(path, jsonl, &err))
    std::fprintf(stderr, "warning: cannot write flight record %s: %s\n",
                 path.c_str(), err.c_str());
  else
    std::fprintf(stderr, "flight record: %s\n", path.c_str());
}

/// Transport/fault counters, printed after the per-phase summary whenever
/// fault injection was active.
void print_fault_summary(const congest::NetworkStats& s,
                         const congest::RunOutcome& run) {
  std::printf("transport: status=%s physical_rounds=%ld frames=%ld "
              "markers=%ld retransmits=%ld frame_bits=%lld\n",
              congest::to_string(run.status), s.rounds, s.frames,
              s.marker_frames, s.retransmissions,
              static_cast<long long>(s.frame_bits));
  std::printf("faults: dropped=%ld duplicated=%ld corrupted=%ld delayed=%ld "
              "crashes=%d\n",
              s.faults_dropped, s.faults_duplicated, s.faults_corrupted,
              s.faults_delayed, s.crashes);
}

/// --audit mode: runs the conformance battery (wire audit + determinism +
/// order-obliviousness + id-obliviousness dual runs) over the protocol the
/// command would have executed once, and prints the report. Verdicts must
/// be id-invariant on any graph; round counts are only id-invariant on
/// vertex-transitive graphs, so they are not compared across seeds here.
int run_audit_battery(const Graph& g, const audit::ProtocolRunner& runner) {
  audit::ConformanceOptions opts;
  opts.id_seeds = {1, 2, 3};
  opts.require_equal_rounds = false;
  const auto report = audit::check_conformance(g, {}, runner, opts);
  std::printf("%s", report.format().c_str());
  return report.ok() ? 0 : 5;
}

/// Trace wiring for the distributed commands: an in-memory buffer always
/// feeds the per-phase summary; --trace additionally streams to a file.
struct TraceSetup {
  obs::TraceBuffer buffer;
  std::ofstream file;  // destroyed after `exporter` flushes its trailer
  std::unique_ptr<obs::TraceSink> exporter;
  obs::TeeSink tee;

  obs::TraceSink* sink() { return &tee; }
};

std::unique_ptr<TraceSetup> make_trace_setup(const Args& args) {
  auto setup = std::make_unique<TraceSetup>();
  setup->tee.add(&setup->buffer);
  if (!args.has("trace")) return setup;
  std::string path = args.get("trace");
  std::string format = "jsonl";
  const auto colon = path.rfind(':');
  if (colon != std::string::npos) {
    const std::string suffix = path.substr(colon + 1);
    if (suffix == "jsonl" || suffix == "chrome") {
      format = suffix;
      path.resize(colon);
    } else if (suffix.find('/') == std::string::npos &&
               suffix.find('.') == std::string::npos) {
      usage(("unknown trace format '" + suffix + "' (jsonl|chrome)").c_str());
    }
  }
  if (path.empty()) usage("--trace needs a file name");
  setup->file.open(path);
  if (!setup->file) usage(("cannot open trace file " + path).c_str());
  if (format == "chrome")
    setup->exporter = std::make_unique<obs::ChromeTraceExporter>(setup->file);
  else
    setup->exporter = std::make_unique<obs::JsonlExporter>(setup->file);
  setup->tee.add(setup->exporter.get());
  return setup;
}

/// Prints the per-phase table and cross-checks it against NetworkStats
/// (the two are deltas vs totals of the same counters, so any mismatch is
/// a tracing bug; the obs tests enforce equality too).
void print_phase_summary(const obs::TraceBuffer& buffer,
                         const congest::NetworkStats& stats) {
  const obs::Summary summary = obs::summarize(buffer);
  std::printf("\nper-phase summary:\n%s", obs::format_summary(summary).c_str());
  const bool consistent = summary.total_rounds == stats.rounds &&
                          summary.total_messages == stats.messages &&
                          summary.total_bits == stats.total_bits &&
                          summary.balanced;
  std::printf("trace check: %s (NetworkStats: rounds=%ld messages=%ld "
              "bits=%lld max_msg=%d)\n",
              consistent ? "ok, totals == NetworkStats" : "MISMATCH",
              stats.rounds, stats.messages,
              static_cast<long long>(stats.total_bits),
              stats.max_message_bits);
}

/// --churn mode, shared by decide/maximize/minimize/count: each script
/// batch is an epoch — mutate, repair the elimination tree, re-fold only
/// the affected root-path tables, digest-check against a from-scratch
/// oracle. Per-epoch reporting plus the final epoch's verdict; exit 5 on
/// any incremental/oracle digest divergence, 9 if any epoch degraded.
int run_churn(const Args& args, Graph g, churn::Query query, int d) {
  churn::ChurnScript script;
  try {
    script = churn::parse_churn_script(args.get("churn"));
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  auto ms = make_metrics_setup(args);  // before any engine/network exists
  churn::Options opts;
  opts.d = d;
  opts.verify = script.verify;
  opts.net.threads = thread_count(args);
  apply_fault_options(args, opts.net);
  churn::ChurnEngine engine(std::move(g), std::move(query), opts);
  const std::vector<churn::StepOutcome> outs = engine.run(script);
  bool degraded = false, mismatch = false;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const churn::StepOutcome& o = outs[i];
    // Epoch 0 and no-tree epochs recompute without attempting a repair.
    const bool repaired = o.status == churn::StepStatus::kRefolded ||
                          o.status == churn::StepStatus::kRebuilt ||
                          o.repair_failed || o.fallback_used;
    std::printf("epoch %zu: status=%s repair=%s rounds=%ld refold=%d "
                "folds=%ld digest=%016llx%s%s\n",
                i, churn::to_string(o.status),
                repaired ? churn::to_string(o.repair) : "-",
                o.rounds, o.refold_count, o.folds,
                static_cast<unsigned long long>(o.digest),
                o.verified ? (o.digest_ok ? " oracle=match" : " oracle=MISMATCH")
                           : " oracle=skipped",
                o.note.empty() ? "" : (" note=" + o.note).c_str());
    degraded = degraded || !o.ok();
    mismatch = mismatch || (o.verified && !o.digest_ok);
  }
  const churn::StepOutcome& last = outs.back();
  if (last.verdict.treedepth_exceeded) {
    std::printf("final: treedepth > %d\n", d);
  } else if (!last.ok()) {
    std::printf("final: degraded (%s); verdict untrusted\n",
                congest::to_string(last.run.status));
  } else {
    switch (engine.query().pipeline) {
      case churn::Pipeline::kDecision:
        std::printf("final: %s\n", last.verdict.holds ? "holds" : "fails");
        break;
      case churn::Pipeline::kCount:
        std::printf("final: count=%llu\n",
                    static_cast<unsigned long long>(last.verdict.count));
        break;
      default:
        if (last.verdict.feasible)
          std::printf("final: optimum=%lld\n",
                      static_cast<long long>(last.verdict.best_weight));
        else
          std::printf("final: infeasible\n");
        break;
    }
  }
  if (ms) ms->write_snapshot(degraded ? "churn-degraded" : "churn-ok");
  // The flight ring of the most recent degraded epoch, if any — churn
  // runs one network per epoch, so the last degraded one tells the story.
  std::string flight;
  for (auto it = outs.rbegin(); it != outs.rend() && flight.empty(); ++it)
    flight = it->flight;
  if (mismatch) {
    std::fprintf(stderr, "error: incremental digest diverged from the "
                         "from-scratch oracle\n");
    maybe_dump_flight(args, 5, flight);
    return 5;
  }
  if (degraded) {
    std::fprintf(stderr, "degraded: at least one churn epoch could not be "
                         "repaired or re-solved; see per-epoch notes\n");
    maybe_dump_flight(args, 9, flight);
    return 9;
  }
  return 0;
}

int cmd_decide(const Args& args) {
  const Graph g = load_graph(args);
  const auto formula = mso::parse(args.get("formula"));
  if (const auto d = dist_budget(args)) {
    if (args.has("churn")) {
      churn::Query q;
      q.pipeline = churn::Pipeline::kDecision;
      q.formula = formula;
      return run_churn(args, g, std::move(q), *d);
    }
    auto ms = make_metrics_setup(args);  // before any engine/network exists
    if (args.has("audit")) {
      const int rc = run_audit_battery(g, [&](congest::Network& net) {
        const auto out = dist::run_decision(net, formula, *d);
        if (out.treedepth_exceeded) return std::string("treedepth exceeded");
        return std::string(out.holds ? "holds" : "fails");
      });
      if (ms) ms->write_snapshot(rc == 0 ? "audit-ok" : "audit-failed");
      return rc;
    }
    auto trace = make_trace_setup(args);
    auto cache = make_universe_cache(args, formula, {});
    congest::NetworkConfig cfg;
    cfg.sink = trace->sink();
    cfg.threads = thread_count(args);
    apply_fault_options(args, cfg);
    apply_metrics_options(ms.get(), cfg);
    congest::Network net(g, cfg);
    const auto out =
        dist::run_decision(net, formula, *d, cache.get(), tree_options(args));
    cache.save();
    if (!out.run.ok()) {
      print_phase_summary(trace->buffer, net.stats());
      print_fault_summary(net.stats(), out.run);
      finish_metrics(ms.get(), net.stats(), out.run);
      const int rc = report_degraded(out.run);
      maybe_dump_flight(args, rc, net.flight_recorder().dump_string());
      return rc;
    }
    if (out.treedepth_exceeded) {
      std::printf("treedepth > %d (reported by Algorithm 2)\n", *d);
      print_phase_summary(trace->buffer, net.stats());
      finish_metrics(ms.get(), net.stats(), out.run);
      return 3;
    }
    std::printf("%s\n", out.holds ? "holds" : "fails");
    std::printf("rounds=%ld classes=%zu class_bits<=%d\n", out.total_rounds(),
                out.num_classes, out.max_class_bits);
    print_phase_summary(trace->buffer, net.stats());
    if (args.has("faults")) print_fault_summary(net.stats(), out.run);
    finish_metrics(ms.get(), net.stats(), out.run);
    return out.holds ? 0 : 1;
  }
  const bool holds = seq::decide(g, formula);
  std::printf("%s\n", holds ? "holds" : "fails");
  return holds ? 0 : 1;
}

int cmd_optimize(const Args& args, bool maximize) {
  const Graph g = load_graph(args);
  const auto formula = mso::parse(args.get("formula"));
  const std::string var = args.get("var");
  const mso::Sort sort = parse_sort(args.get("sort"));
  if (const auto d = dist_budget(args)) {
    if (args.has("churn")) {
      churn::Query q;
      q.pipeline =
          maximize ? churn::Pipeline::kMaximize : churn::Pipeline::kMinimize;
      q.formula = formula;
      q.var = var;
      q.var_sort = sort;
      return run_churn(args, g, std::move(q), *d);
    }
    auto ms = make_metrics_setup(args);  // before any engine/network exists
    if (args.has("audit")) {
      const int rc = run_audit_battery(g, [&](congest::Network& net) {
        const auto out = maximize
                             ? dist::run_maximize(net, formula, var, sort, *d)
                             : dist::run_minimize(net, formula, var, sort, *d);
        if (out.treedepth_exceeded) return std::string("treedepth exceeded");
        if (!out.best_weight) return std::string("infeasible");
        return "optimum=" + std::to_string(*out.best_weight);
      });
      if (ms) ms->write_snapshot(rc == 0 ? "audit-ok" : "audit-failed");
      return rc;
    }
    auto trace = make_trace_setup(args);
    auto cache = make_universe_cache(args, formula, {{var, sort}});
    congest::NetworkConfig cfg;
    cfg.sink = trace->sink();
    cfg.threads = thread_count(args);
    apply_fault_options(args, cfg);
    apply_metrics_options(ms.get(), cfg);
    congest::Network net(g, cfg);
    const auto out = maximize
                         ? dist::run_maximize(net, formula, var, sort, *d,
                                              cache.get(), tree_options(args))
                         : dist::run_minimize(net, formula, var, sort, *d,
                                              cache.get(), tree_options(args));
    cache.save();
    if (!out.run.ok()) {
      print_phase_summary(trace->buffer, net.stats());
      print_fault_summary(net.stats(), out.run);
      finish_metrics(ms.get(), net.stats(), out.run);
      const int rc = report_degraded(out.run);
      maybe_dump_flight(args, rc, net.flight_recorder().dump_string());
      return rc;
    }
    if (out.treedepth_exceeded) {
      std::printf("treedepth > %d\n", *d);
      print_phase_summary(trace->buffer, net.stats());
      finish_metrics(ms.get(), net.stats(), out.run);
      return 3;
    }
    print_phase_summary(trace->buffer, net.stats());
    if (args.has("faults")) print_fault_summary(net.stats(), out.run);
    finish_metrics(ms.get(), net.stats(), out.run);
    if (!out.best_weight) {
      std::printf("infeasible\n");
      return 1;
    }
    std::printf("optimum=%lld rounds=%ld\n",
                static_cast<long long>(*out.best_weight), out.total_rounds());
    std::printf("selected:");
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (v < static_cast<int>(out.vertices.size()) && out.vertices[v])
        std::printf(" v%d", v);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (e < static_cast<int>(out.edges.size()) && out.edges[e])
        std::printf(" e%d(%d-%d)", e, g.edge(e).u, g.edge(e).v);
    std::printf("\n");
    return 0;
  }
  const auto out = maximize ? seq::maximize(g, formula, var, sort)
                            : seq::minimize(g, formula, var, sort);
  if (!out) {
    std::printf("infeasible\n");
    return 1;
  }
  std::printf("optimum=%lld\n", static_cast<long long>(out->weight));
  std::printf("selected:");
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (out->vertices[v]) std::printf(" v%d", v);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (out->edges[e]) std::printf(" e%d(%d-%d)", e, g.edge(e).u, g.edge(e).v);
  std::printf("\n");
  return 0;
}

int cmd_count(const Args& args) {
  const Graph g = load_graph(args);
  const auto formula = mso::parse(args.get("formula"));
  std::vector<std::pair<std::string, mso::Sort>> vars;
  std::istringstream ss(args.get("vars"));
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) usage("--vars needs NAME:vset|eset items");
    vars.emplace_back(item.substr(0, colon), parse_sort(item.substr(colon + 1)));
  }
  if (const auto d = dist_budget(args)) {
    if (args.has("churn")) {
      churn::Query q;
      q.pipeline = churn::Pipeline::kCount;
      q.formula = formula;
      q.vars = vars;
      return run_churn(args, g, std::move(q), *d);
    }
    auto ms = make_metrics_setup(args);  // before any engine/network exists
    if (args.has("audit")) {
      const int rc = run_audit_battery(g, [&](congest::Network& net) {
        const auto out = dist::run_count(net, formula, vars, *d);
        if (out.treedepth_exceeded) return std::string("treedepth exceeded");
        return "count=" + std::to_string(out.count);
      });
      if (ms) ms->write_snapshot(rc == 0 ? "audit-ok" : "audit-failed");
      return rc;
    }
    auto trace = make_trace_setup(args);
    auto cache = make_universe_cache(args, formula, vars);
    congest::NetworkConfig cfg;
    cfg.sink = trace->sink();
    cfg.threads = thread_count(args);
    apply_fault_options(args, cfg);
    apply_metrics_options(ms.get(), cfg);
    congest::Network net(g, cfg);
    const auto out = dist::run_count(net, formula, vars, *d, cache.get(),
                                     tree_options(args));
    cache.save();
    if (!out.run.ok()) {
      print_phase_summary(trace->buffer, net.stats());
      print_fault_summary(net.stats(), out.run);
      finish_metrics(ms.get(), net.stats(), out.run);
      const int rc = report_degraded(out.run);
      maybe_dump_flight(args, rc, net.flight_recorder().dump_string());
      return rc;
    }
    if (out.treedepth_exceeded) {
      std::printf("treedepth > %d\n", *d);
      print_phase_summary(trace->buffer, net.stats());
      finish_metrics(ms.get(), net.stats(), out.run);
      return 3;
    }
    std::printf("count=%llu rounds=%ld\n",
                static_cast<unsigned long long>(out.count),
                out.total_rounds());
    print_phase_summary(trace->buffer, net.stats());
    if (args.has("faults")) print_fault_summary(net.stats(), out.run);
    finish_metrics(ms.get(), net.stats(), out.run);
    return 0;
  }
  std::printf("count=%llu\n",
              static_cast<unsigned long long>(seq::count(g, formula, vars)));
  return 0;
}

int cmd_treedepth(const Args& args) {
  if (args.has("trace")) usage("--trace requires --dist");
  const Graph g = load_graph(args);
  if (g.num_vertices() <= 20) {
    std::printf("treedepth=%d (exact)\n", exact_treedepth(g));
  } else {
    const auto forest = balanced_elimination_forest(g);
    std::printf("treedepth<=%d (balanced heuristic)\n", forest.depth());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "decide") return cmd_decide(args);
    if (args.command == "maximize") return cmd_optimize(args, true);
    if (args.command == "minimize") return cmd_optimize(args, false);
    if (args.command == "count") return cmd_count(args);
    if (args.command == "treedepth") return cmd_treedepth(args);
    usage("unknown command");
  } catch (const congest::RoundLimitError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 6;
  } catch (const congest::CrashedError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 7;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  }
}
