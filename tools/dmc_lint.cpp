// dmc-lint — static model-conformance checks for CONGEST protocol code.
//
// The dynamic audit layer (src/congest/wire.hpp) catches violations at run
// time on the inputs you happen to execute; this tool flags the classic
// sources of nonconformance at the source level, before any run:
//
//   unordered-iteration   range-for / .begin() iteration over a variable
//                         declared as std::unordered_map/set. Iteration
//                         order is implementation-defined, so any protocol
//                         decision derived from it is nondeterministic.
//   nondeterminism        rand()/srand()/std::random_device/time()/clock()
//                         in protocol code. Simulated nodes must be pure
//                         functions of their messages, ids, and explicit
//                         seeds.
//   raw-clock             <chrono clock>::now() reads outside src/obs and
//                         src/metrics. Wall-clock reads scattered through
//                         the stack cannot be faked in tests (obs::Clock's
//                         fake override never sees them) and make timing
//                         fields nondeterministic; go through
//                         obs::now_ms()/now_us() (src/obs/clock.hpp), the
//                         one sanctioned seam.
//   global-state          mutable static variables. Cross-node state
//                         sharing through globals breaks the model (nodes
//                         only communicate through messages) and breaks
//                         run-to-run determinism.
//   unregistered-payload  Message(SomePayload{...}) construction where no
//                         register_codec<SomePayload> exists in the scanned
//                         sources — the payload would fail the wire audit.
//   raw-send              NodeCtx::send_unreliable(...) in protocol code
//                         (paths under src/dist). Best-effort sends bypass
//                         the reliable-transport shim, so under fault
//                         injection the message may silently never arrive;
//                         protocols must either use plain send() or mark
//                         the loss-tolerant call site with
//                         "dmc-lint: allow(raw-send)".
//   raw-thread            std::thread / std::jthread / std::async outside
//                         src/par. Ad-hoc threads bypass the shared pool's
//                         nesting guard and exception funnel and are
//                         invisible to the --threads=1 exact-legacy
//                         switch; use par::parallel_for (src/par/pool.hpp)
//                         or move the code under src/par.
//   raw-io                global-namespace blocking I/O calls — ::socket,
//                         ::bind, ::accept, ::connect, ::recv, ::send,
//                         ::read, ::write, ::poll, ::select, ::close —
//                         outside src/serve/io*. Blocking descriptor I/O
//                         scattered through scheduler or protocol code is
//                         invisible to deadlines and shutdown and cannot
//                         be faked in tests; all descriptor traffic goes
//                         through the serve::io layer (src/serve/io.hpp),
//                         which owns the sanctioned timeout-aware
//                         primitives.
//   naked-condvar-wait    cv.wait(lock) with no predicate. A wait without
//                         a predicate lambda is vulnerable to spurious
//                         wakeups and lost notifications unless the caller
//                         re-checks the condition in its own loop; the
//                         two-argument overload wait(lock, pred) encodes
//                         the loop correctly and self-documents what is
//                         being waited for. The pool internals (src/par)
//                         and the tier cache's hand-rolled wait loop
//                         (src/bpt/universe_tier.cpp) are the audited
//                         exceptions.
//   raw-metric            std::atomic* in simulator/protocol code (paths
//                         under src/congest or src/dist). Ad-hoc atomic
//                         counters are invisible to the metrics registry,
//                         so their totals can never be reconciled against
//                         NetworkStats or the obs trace; count through
//                         dmc::metrics (src/metrics/metrics.hpp) or the
//                         par:: atomic helpers. src/metrics and src/par
//                         themselves are exempt (they implement the
//                         sanctioned primitives); deliberate low-level
//                         atomics are marked "dmc-lint: allow(raw-metric)".
//
// Usage: dmc-lint [--self-test] <file-or-dir>...
//   Directories are scanned recursively for .cpp/.cc/.hpp/.h files.
//   Findings print as "file:line: rule: message"; exit status 1 if any.
//   A finding is suppressed by "// dmc-lint: allow(<rule>)" on its line.
//   --self-test: every expected finding in the inputs is marked with
//   "// lint-expect: <rule>"; the tool exits 0 iff the emitted findings
//   match the markers exactly (used by tests/lint_fixtures).
//
// Deliberately a lightweight lexical pass (comments and string literals
// are stripped, line numbers preserved): it complements, not replaces,
// clang-tidy (.clang-tidy) and the dynamic audit.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
}

/// Removes comments and string/char literal *contents* while preserving
/// the line structure, so regex rules neither fire on prose nor lose line
/// numbers. Raw lines are kept separately for the marker scans.
std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { Code, Line, Block, Str, Chr } state = State::Code;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::Line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::Block;
          ++i;
        } else if (c == '"') {
          state = State::Str;
          out += c;
        } else if (c == '\'') {
          state = State::Chr;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::Line:
        if (c == '\n') {
          state = State::Code;
          out += c;
        }
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          state = State::Code;
          ++i;
        } else if (c == '\n') {
          out += c;
        }
        break;
      case State::Str:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::Code;
          out += c;
        } else if (c == '\n') {
          out += c;  // unterminated; keep line structure
        }
        break;
      case State::Chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::Code;
          out += c;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

struct FileText {
  std::string path;
  std::vector<std::string> raw;   // original lines (markers live here)
  std::vector<std::string> code;  // comment/string-stripped lines
};

const std::regex kUnorderedDecl(
    R"(std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+([A-Za-z_]\w*)\s*[;={(])");
const std::regex kRegisteredCodec(R"(register_codec\s*<\s*([A-Za-z_][\w:]*))");
const std::regex kPayloadSend(R"(Message\s*\(\s*([A-Z]\w*)\s*\{)");
const std::regex kBannedCall(
    R"((?:^|[^\w.])(rand|srand|time|clock)\s*\(|std::random_device)");
// Any chrono-style clock read: steady_clock::now, system_clock::now,
// high_resolution_clock::now, or a hand-rolled Clock::now. obs::now_ms is
// fine — `now` must be reached through `::`.
const std::regex kRawClock(R"((?:_clock|\bClock)\s*::\s*now\s*\()");
const std::regex kMutableStatic(
    R"((?:^|\s)static\s+(?!const\b|constexpr\b|_\w)[A-Za-z_][\w:<>,\s*&]*?\s[A-Za-z_]\w*\s*[;={])");
const std::regex kRawSend(R"(\bsend_unreliable\s*\()");
const std::regex kRawThread(R"(\bstd\s*::\s*(?:jthread|thread|async)\b)");
// Member wait call with a single bare-identifier argument — the lock-only
// condition_variable overload. A predicate wait has a second argument
// (`, [..] {...}`), so the comma keeps it from matching; wait_for/
// wait_until never match because `wait` must be followed by `(`.
const std::regex kNakedWait(R"(\.\s*wait\s*\(\s*[A-Za-z_]\w*\s*\))");
const std::regex kRawAtomic(R"(\bstd\s*::\s*atomic\w*)");
// Global-namespace-qualified POSIX descriptor calls only: `io::read_line`
// or `std::ios::in` must not match, so the `::` may not be preceded by an
// identifier character or another colon.
const std::regex kRawIo(
    R"((?:^|[^\w:])::\s*(socket|bind|listen|accept4?|connect|recv|recvfrom|send|sendto|read|write|poll|select|close)\s*\()");

/// The raw-send rule only applies to protocol sources (paths under
/// src/dist); the transport layer itself legitimately uses best-effort
/// sends. Separators are normalized so the check is OS-independent.
bool in_protocol_tree(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.find("src/dist/") != std::string::npos ||
         p.find("src/dist") == 0;
}

/// The raw-thread rule exempts the pool implementation itself (paths under
/// src/par), which is the one place allowed to own std::thread objects.
bool in_par_tree(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.find("src/par/") != std::string::npos || p.find("src/par") == 0;
}

/// The raw-metric rule covers the simulator and protocol trees; the metric
/// primitives themselves (src/metrics) and the pool's atomic helpers
/// (src/par) are the sanctioned owners of raw atomics.
bool in_congest_tree(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.find("src/congest/") != std::string::npos ||
         p.find("src/congest") == 0;
}

bool in_metrics_tree(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.find("src/metrics/") != std::string::npos ||
         p.find("src/metrics") == 0;
}

/// The raw-clock rule exempts the clock seam's own tree (src/obs owns
/// obs::Clock and the now_ms/now_us helpers) and src/metrics; everywhere
/// else must read time through the seam so tests can fake it.
bool in_clock_exempt(const std::string& path) {
  if (in_metrics_tree(path)) return true;
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.find("src/obs/") != std::string::npos || p.find("src/obs") == 0;
}

/// The raw-io rule exempts the serving I/O layer itself (src/serve/io.hpp
/// and src/serve/io.cpp), the one sanctioned owner of raw descriptors.
bool in_serve_io(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  const auto pos = p.find("src/serve/io");
  if (pos == std::string::npos) return false;
  // Match io.hpp / io.cpp / io_*.hpp, not e.g. src/serve/iovec_util.hpp
  // being smuggled past the rule by prefix: the next char must be '.' or
  // '_' or end the stem.
  const std::size_t next = pos + std::string("src/serve/io").size();
  return next >= p.size() || p[next] == '.' || p[next] == '_';
}

/// The naked-condvar-wait rule exempts the audited hand-rolled wait
/// loops: the pool internals (src/par) and the tier cache's single-flight
/// wait (src/bpt/universe_tier.cpp), whose enclosing while-loops re-check
/// the condition themselves.
bool in_condvar_exempt(const std::string& path) {
  if (in_par_tree(path)) return true;
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p.find("src/bpt/universe_tier.cpp") != std::string::npos;
}

bool suppressed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("dmc-lint: allow(" + rule + ")") != std::string::npos;
}

void add_finding(std::vector<Finding>& out, const FileText& f, int line,
                 const std::string& rule, const std::string& message) {
  if (suppressed(f.raw[line], rule)) return;
  out.push_back(Finding{f.path, line + 1, rule, message});
}

void lint_file(const FileText& f, const std::set<std::string>& registered,
               std::vector<Finding>& out) {
  // Pass 1: names declared with unordered container types in this file.
  std::set<std::string> unordered_vars;
  for (const std::string& line : f.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kUnorderedDecl), end;
         it != end; ++it)
      unordered_vars.insert((*it)[1].str());
  }
  // Pass 2: per-line rules.
  for (int i = 0; i < static_cast<int>(f.code.size()); ++i) {
    const std::string& line = f.code[i];
    std::smatch m;

    for (const std::string& var : unordered_vars) {
      const std::regex iteration("(for\\s*\\([^;)]*:\\s*" + var +
                                 "\\b)|(\\b" + var + "\\s*\\.\\s*c?begin\\s*\\()");
      if (std::regex_search(line, m, iteration))
        add_finding(out, f, i, "unordered-iteration",
                    "iteration over unordered container '" + var +
                        "' — order is implementation-defined; use std::map/"
                        "std::set or sort first");
    }

    if (std::regex_search(line, m, kBannedCall)) {
      const std::string what =
          m[1].matched ? m[1].str() + "()" : "std::random_device";
      add_finding(out, f, i, "nondeterminism",
                  "call to '" + what +
                      "' — protocol code must be a deterministic function of "
                      "messages, ids, and explicit seeds");
    }

    if (!in_clock_exempt(f.path) && std::regex_search(line, m, kRawClock))
      add_finding(out, f, i, "raw-clock",
                  "raw '" + m[0].str() +
                      ")' outside src/obs — wall-clock reads off the seam "
                      "cannot be faked by obs::Clock in tests and make "
                      "timing fields nondeterministic; use obs::now_ms()/"
                      "now_us() (src/obs/clock.hpp)");

    if (std::regex_search(line, m, kMutableStatic))
      add_finding(out, f, i, "global-state",
                  "mutable static state — nodes may only share state through "
                  "messages; make it const/constexpr or pass it explicitly");

    if (in_protocol_tree(f.path) && std::regex_search(line, m, kRawSend))
      add_finding(out, f, i, "raw-send",
                  "best-effort send_unreliable() bypasses the reliable "
                  "transport — the message may be lost under fault "
                  "injection; use send(), or mark the loss-tolerant call "
                  "site with dmc-lint: allow(raw-send)");

    if ((in_protocol_tree(f.path) || in_congest_tree(f.path)) &&
        !in_par_tree(f.path) && !in_metrics_tree(f.path) &&
        std::regex_search(line, m, kRawAtomic))
      add_finding(out, f, i, "raw-metric",
                  "ad-hoc '" + m[0].str() +
                      "' in simulator/protocol code — atomic counters "
                      "outside dmc::metrics can never be reconciled against "
                      "NetworkStats or the obs trace; use "
                      "metrics::Counter/Gauge/Histogram "
                      "(src/metrics/metrics.hpp) or the par:: atomic "
                      "helpers, or mark a deliberate low-level atomic with "
                      "dmc-lint: allow(raw-metric)");

    if (!in_serve_io(f.path) && std::regex_search(line, m, kRawIo))
      add_finding(out, f, i, "raw-io",
                  "raw '::" + m[1].str() +
                      "()' outside src/serve/io* — blocking descriptor I/O "
                      "in scheduler/protocol code is invisible to deadlines "
                      "and shutdown; go through serve::io "
                      "(src/serve/io.hpp), or move the code into the "
                      "sanctioned io layer");

    if (!in_condvar_exempt(f.path) && std::regex_search(line, m, kNakedWait))
      add_finding(out, f, i, "naked-condvar-wait",
                  "condition-variable wait without a predicate — spurious "
                  "wakeups and lost notifications slip through unless the "
                  "caller loops; use wait(lock, [&]{ return <condition>; }) "
                  "or mark an audited hand-rolled loop with "
                  "dmc-lint: allow(naked-condvar-wait)");

    if (!in_par_tree(f.path) && std::regex_search(line, m, kRawThread))
      add_finding(out, f, i, "raw-thread",
                  "raw '" + m[0].str() +
                      "' outside src/par — ad-hoc threads bypass the shared "
                      "pool's nesting guard, exception funnel, and the "
                      "--threads=1 exact-legacy switch; use "
                      "par::parallel_for (src/par/pool.hpp)");

    for (std::sregex_iterator it(line.begin(), line.end(), kPayloadSend), end;
         it != end; ++it) {
      const std::string type = (*it)[1].str();
      if (type == "Message" || registered.count(type) != 0) continue;
      add_finding(out, f, i, "unregistered-payload",
                  "payload type '" + type +
                      "' has no register_codec<" + type +
                      "> in the scanned sources — it would fail the wire "
                      "audit (see src/congest/wire.hpp)");
    }
  }
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

int usage() {
  std::cerr << "usage: dmc-lint [--self-test] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test")
      self_test = true;
    else if (!arg.empty() && arg[0] == '-')
      return usage();
    else
      inputs.emplace_back(arg);
  }
  if (inputs.empty()) return usage();

  std::vector<std::filesystem::path> files;
  for (const auto& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input))
        if (entry.is_regular_file() && lintable(entry.path()))
          files.push_back(entry.path());
    } else if (std::filesystem::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      std::cerr << "dmc-lint: cannot read " << input << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<FileText> texts;
  std::set<std::string> registered;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    FileText f;
    f.path = path.string();
    f.raw = split_lines(buf.str());
    f.code = split_lines(strip_comments_and_strings(buf.str()));
    for (const std::string& line : f.code) {
      for (std::sregex_iterator it(line.begin(), line.end(), kRegisteredCodec),
           end;
           it != end; ++it)
        registered.insert((*it)[1].str());
    }
    texts.push_back(std::move(f));
  }

  std::vector<Finding> findings;
  for (const FileText& f : texts) lint_file(f, registered, findings);
  std::sort(findings.begin(), findings.end());

  if (!self_test) {
    for (const Finding& f : findings)
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": "
                << f.message << "\n";
    if (!findings.empty()) {
      std::cout << findings.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  }

  // Self-test: findings must equal the "// lint-expect: <rule>" markers.
  std::set<std::string> expected, actual;
  const std::regex expect(R"(lint-expect:\s*([a-z-]+))");
  for (const FileText& f : texts)
    for (int i = 0; i < static_cast<int>(f.raw.size()); ++i) {
      std::smatch m;
      std::string line = f.raw[i];
      while (std::regex_search(line, m, expect)) {
        expected.insert(f.path + ":" + std::to_string(i + 1) + ":" +
                        m[1].str());
        line = m.suffix();
      }
    }
  for (const Finding& f : findings)
    actual.insert(f.file + ":" + std::to_string(f.line) + ":" + f.rule);

  bool ok = true;
  for (const std::string& e : expected)
    if (actual.count(e) == 0) {
      std::cout << "MISSED expected finding " << e << "\n";
      ok = false;
    }
  for (const std::string& a : actual)
    if (expected.count(a) == 0) {
      std::cout << "UNEXPECTED finding " << a << "\n";
      ok = false;
    }
  std::cout << "self-test: " << actual.size() << " findings, "
            << expected.size() << " expected — " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
