// dmc-mc: bounded systematic schedule exploration (docs/STATIC_ANALYSIS.md,
// "Model checking" section).
//
// Explores every schedule of a registered scenario (src/mc/scenarios.hpp)
// up to the adversary budgets and depth bound, with dynamic partial-order
// reduction, and reports violations as replayable .dmcsched traces.
//
//   dmc-mc --list
//   dmc-mc --scenario transport-pair [--no-dpor] [--compare]
//          [--depth-bound N] [--max-schedules N]
//          [--defer-bound N] [--extra-tx-bound N]
//          [--trace-out ce.dmcsched] [--replay ce.dmcsched]
//          [--stop-on-violation]
//   dmc-mc --self-check
//
// Exit codes: 0 = explored clean (or replay reproduced no violation),
// 9 = counterexample found (or replay reproduced one), 1 = self-check
// failed, 2 = usage / unknown scenario.

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mc/explorer.hpp"
#include "mc/scenarios.hpp"
#include "mc/sched_trace.hpp"

namespace {

constexpr int kExitCounterexample = 9;

struct Args {
  std::string scenario;
  bool list = false;
  bool self_check = false;
  bool dpor = true;
  bool compare = false;  // run both modes, report the reduction factor
  bool stop_on_violation = false;
  int depth_bound = 512;
  long max_schedules = 200000;
  int defer_bound = 1;
  int extra_tx_bound = 1;
  std::string trace_out;
  std::string replay_path;
};

int usage(std::ostream& out, int code) {
  out << "usage: dmc-mc --scenario NAME [options]\n"
         "       dmc-mc --list | --self-check\n"
         "options:\n"
         "  --list                 list registered scenarios\n"
         "  --scenario NAME        scenario to explore\n"
         "  --no-dpor              full enumeration (no reduction)\n"
         "  --compare              explore with and without DPOR, report\n"
         "                         the schedule-count reduction factor\n"
         "  --depth-bound N        max choice points per execution "
         "(default 512)\n"
         "  --max-schedules N      execution cap (default 200000)\n"
         "  --defer-bound N        link-defer budget per execution "
         "(default 1)\n"
         "  --extra-tx-bound N     adversarial early-retransmit budget "
         "(default 1)\n"
         "  --trace-out FILE       write the first counterexample as a\n"
         "                         .dmcsched replay trace\n"
         "  --replay FILE          replay one .dmcsched trace instead of\n"
         "                         exploring\n"
         "  --stop-on-violation    stop at the first violating schedule\n"
         "  --self-check           plant a transport ordering bug, verify\n"
         "                         the explorer finds it and the trace\n"
         "                         replays it deterministically\n";
  return code;
}

bool parse_long(const char* s, long& out) {
  try {
    out = std::stol(s);
  } catch (...) {
    return false;
  }
  return true;
}

dmc::mc::ExplorerOptions explorer_options(const Args& a) {
  dmc::mc::ExplorerOptions o;
  o.dpor = a.dpor;
  o.depth_bound = a.depth_bound;
  o.max_schedules = a.max_schedules;
  o.stop_on_violation = a.stop_on_violation;
  return o;
}

dmc::mc::ScenarioOptions scenario_options(const Args& a) {
  dmc::mc::ScenarioOptions o;
  o.defer_bound = a.defer_bound;
  o.extra_tx_bound = a.extra_tx_bound;
  return o;
}

void print_result(const std::string& mode, const dmc::mc::ExploreResult& r) {
  std::cout << "  [" << mode << "] schedules=" << r.schedules
            << " pruned=" << r.pruned << " max-depth=" << r.max_depth
            << " violations=" << r.violations
            << (r.hit_schedule_cap ? " (schedule cap hit)" : "") << "\n";
}

void save_trace(const Args& args, const dmc::mc::Counterexample& cx) {
  if (args.trace_out.empty()) return;
  dmc::mc::SchedTrace trace;
  trace.scenario = args.scenario;
  trace.options = {
      {"defer-bound", std::to_string(args.defer_bound)},
      {"extra-tx-bound", std::to_string(args.extra_tx_bound)},
      {"depth-bound", std::to_string(args.depth_bound)},
  };
  trace.entries = dmc::mc::to_trace(cx.steps);
  dmc::mc::write_trace(args.trace_out, trace);
  std::cout << "counterexample trace written to " << args.trace_out << "\n";
}

int run_replay(const Args& args) {
  dmc::mc::SchedTrace trace = dmc::mc::read_trace(args.replay_path);
  const std::string name =
      args.scenario.empty() ? trace.scenario : args.scenario;
  auto sys = dmc::mc::make_scenario(name, scenario_options(args));
  std::cout << "dmc-mc: replaying " << trace.entries.size()
            << " recorded choices on " << name << "\n";
  dmc::mc::ReplayResult r = dmc::mc::replay(*sys, trace.entries);
  for (const auto& s : r.steps)
    if (s.chosen >= 0)
      std::cout << "  " << s.enabled[s.chosen].label << "\n";
    else
      std::cout << "  (declined optional actions)\n";
  if (r.diverged)
    std::cout << "replay diverged: " << r.divergence << "\n";
  std::cout << "outcome: " << (r.exec.outcome.empty() ? "-" : r.exec.outcome)
            << "\n";
  for (const std::string& v : r.exec.violations)
    std::cout << "violation: " << v << "\n";
  if (!r.exec.violations.empty()) {
    std::cout << "replay reproduced " << r.exec.violations.size()
              << " violation(s)\n";
    return kExitCounterexample;
  }
  std::cout << "replay completed without violations\n";
  return 0;
}

int run_explore(const Args& args) {
  auto sys = dmc::mc::make_scenario(args.scenario, scenario_options(args));
  std::cout << "dmc-mc: exploring " << args.scenario
            << " (defer-bound=" << args.defer_bound
            << ", extra-tx-bound=" << args.extra_tx_bound
            << ", depth-bound=" << args.depth_bound << ")\n";

  dmc::mc::ExploreResult dpor_result;
  bool have_result = false;
  if (args.compare || !args.dpor) {
    auto full_sys =
        dmc::mc::make_scenario(args.scenario, scenario_options(args));
    dmc::mc::ExplorerOptions full_opts = explorer_options(args);
    full_opts.dpor = false;
    dmc::mc::ExploreResult full = dmc::mc::explore(*full_sys, full_opts);
    print_result("full", full);
    if (!args.dpor) {
      dpor_result = std::move(full);
      have_result = true;
    } else if (args.compare) {
      dmc::mc::ExplorerOptions opts = explorer_options(args);
      dpor_result = dmc::mc::explore(*sys, opts);
      have_result = true;
      print_result("dpor", dpor_result);
      if (dpor_result.schedules > 0 && !dpor_result.hit_schedule_cap) {
        const double factor = static_cast<double>(full.schedules) /
                              static_cast<double>(dpor_result.schedules);
        if (full.hit_schedule_cap)
          // The unreduced space is larger than the cap: the true factor
          // is at least cap / dpor-schedules.
          std::cout << "  reduction factor: >= " << factor << "x ("
                    << full.schedules << "+ -> " << dpor_result.schedules
                    << " schedules; full enumeration capped)\n";
        else
          std::cout << "  reduction factor: " << factor << "x ("
                    << full.schedules << " -> " << dpor_result.schedules
                    << " schedules)\n";
      }
    }
  }
  if (!have_result)
    dpor_result = dmc::mc::explore(*sys, explorer_options(args));
  if (args.dpor && !args.compare) print_result("dpor", dpor_result);

  const dmc::mc::ExploreResult& r = dpor_result;
  if (r.clean()) {
    std::cout << "explored clean: no invariant violations, "
              << (r.have_reference_digest
                      ? "all digests equal across schedules"
                      : "digest checking off for this scenario")
              << "\n";
    return 0;
  }
  std::cout << r.violations << " violation(s) across "
            << r.counterexamples.size() << " captured counterexample(s)\n";
  for (std::size_t i = 0; i < r.counterexamples.size(); ++i) {
    const auto& cx = r.counterexamples[i];
    std::cout << "counterexample " << i + 1 << " (outcome "
              << (cx.outcome.empty() ? "-" : cx.outcome) << "):\n";
    for (const auto& s : cx.steps)
      if (s.chosen >= 0)
        std::cout << "    " << s.enabled[s.chosen].label << "\n";
      else
        std::cout << "    (declined optional actions)\n";
    for (const std::string& v : cx.violations)
      std::cout << "  violation: " << v << "\n";
  }
  if (!r.counterexamples.empty()) save_trace(args, r.counterexamples.front());
  return kExitCounterexample;
}

/// Plants an ordering bug in the transport's duplicate suppression
/// (transport-pair-planted), asserts the explorer finds it, and asserts
/// the .dmcsched trace replays to the same violation — the end-to-end
/// soundness test of the seam + explorer + trace stack.
int run_self_check(Args args) {
  args.scenario = "transport-pair-planted";
  if (args.extra_tx_bound < 1) args.extra_tx_bound = 1;
  auto sys = dmc::mc::make_scenario(args.scenario, scenario_options(args));
  std::cout << "dmc-mc: self-check on " << args.scenario << "\n";
  dmc::mc::ExplorerOptions opts = explorer_options(args);
  dmc::mc::ExploreResult r = dmc::mc::explore(*sys, opts);
  print_result("dpor", r);
  if (r.violations == 0 || r.counterexamples.empty()) {
    std::cout << "self-check FAILED: planted ordering bug not found\n";
    return 1;
  }
  const dmc::mc::Counterexample& cx = r.counterexamples.front();
  std::cout << "planted bug found; counterexample schedule:\n";
  for (const auto& s : cx.steps)
    if (s.chosen >= 0) std::cout << "    " << s.enabled[s.chosen].label << "\n";
  for (const std::string& v : cx.violations)
    std::cout << "  violation: " << v << "\n";
  // The counterexample must reproduce deterministically from its trace.
  auto replay_sys =
      dmc::mc::make_scenario(args.scenario, scenario_options(args));
  dmc::mc::ReplayResult rr =
      dmc::mc::replay(*replay_sys, dmc::mc::to_trace(cx.steps));
  if (rr.diverged) {
    std::cout << "self-check FAILED: replay diverged: " << rr.divergence
              << "\n";
    return 1;
  }
  if (rr.exec.violations != cx.violations) {
    std::cout << "self-check FAILED: replay did not reproduce the recorded "
                 "violations\n";
    for (const std::string& v : rr.exec.violations)
      std::cout << "  replay violation: " << v << "\n";
    return 1;
  }
  if (!args.trace_out.empty()) save_trace(args, cx);
  std::cout << "self-check OK: bug found and counterexample replayed "
               "deterministically\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dmc-mc: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    long n = 0;
    if (a == "--list") {
      args.list = true;
    } else if (a == "--self-check") {
      args.self_check = true;
    } else if (a == "--no-dpor") {
      args.dpor = false;
    } else if (a == "--compare") {
      args.compare = true;
    } else if (a == "--stop-on-violation") {
      args.stop_on_violation = true;
    } else if (a == "--scenario") {
      const char* v = value("--scenario");
      if (v == nullptr) return usage(std::cerr, 2);
      args.scenario = v;
    } else if (a == "--trace-out") {
      const char* v = value("--trace-out");
      if (v == nullptr) return usage(std::cerr, 2);
      args.trace_out = v;
    } else if (a == "--replay") {
      const char* v = value("--replay");
      if (v == nullptr) return usage(std::cerr, 2);
      args.replay_path = v;
    } else if (a == "--depth-bound" || a == "--max-schedules" ||
               a == "--defer-bound" || a == "--extra-tx-bound") {
      const char* v = value(a.c_str());
      if (v == nullptr || !parse_long(v, n) || n < 0) {
        std::cerr << "dmc-mc: bad value for " << a << "\n";
        return usage(std::cerr, 2);
      }
      if (a == "--depth-bound") args.depth_bound = static_cast<int>(n);
      if (a == "--max-schedules") args.max_schedules = n;
      if (a == "--defer-bound") args.defer_bound = static_cast<int>(n);
      if (a == "--extra-tx-bound") args.extra_tx_bound = static_cast<int>(n);
    } else if (a == "--help" || a == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "dmc-mc: unknown option '" << a << "'\n";
      return usage(std::cerr, 2);
    }
  }

  try {
    if (args.list) {
      for (const auto& [name, desc] : dmc::mc::list_scenarios())
        std::cout << name << "\n    " << desc << "\n";
      return 0;
    }
    if (args.self_check) return run_self_check(args);
    if (!args.replay_path.empty()) return run_replay(args);
    if (args.scenario.empty()) {
      std::cerr << "dmc-mc: --scenario (or --list / --self-check / --replay) "
                   "required\n";
      return usage(std::cerr, 2);
    }
    return run_explore(args);
  } catch (const std::exception& ex) {
    std::cerr << "dmc-mc: " << ex.what() << "\n";
    return 2;
  }
}
