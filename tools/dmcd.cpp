// dmcd — the batching model-checking daemon.
//
// Serves the four dmc pipelines (decide / maximize / minimize / count)
// over a unix-domain socket speaking line-delimited JSON (spec in
// docs/SERVING.md). Queries sharing a (formula, width) engine key are
// batched onto one warm bpt::Engine leased from the shared universe
// tier, so a burst of same-shape queries pays universe construction
// once; the DMCU cache directory makes that warmth survive restarts.
//
//   dmcd --socket /tmp/dmcd.sock [--workers N] [--max-queue N]
//        [--universe-dir DIR] [--metrics FILE [--metrics-period-ms N]]
//        [--flight-record DIR]
//
// Exit: 0 after a clean drain (shutdown verb or SIGINT/SIGTERM), 2 on
// usage errors, 4 if the socket cannot be bound.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "metrics/metrics.hpp"
#include "obs/atomic_file.hpp"
#include "par/thread.hpp"
#include "serve/server.hpp"

namespace {

dmc::serve::Server* g_server = nullptr;
volatile std::sig_atomic_t g_signaled = 0;

void on_signal(int) {
  g_signaled = 1;
  if (g_server != nullptr) g_server->stop();
}

[[noreturn]] void usage(const std::string& why = "") {
  if (!why.empty()) std::cerr << "dmcd: " << why << "\n";
  std::cerr << "usage: dmcd --socket PATH [--workers N] [--max-queue N]\n"
               "            [--universe-dir DIR] [--metrics FILE]\n"
               "            [--metrics-period-ms N] [--flight-record DIR]\n";
  std::exit(2);
}

/// Publishes a metrics snapshot via obs::write_file_atomic (temp+rename):
/// a concurrent scraper sees the previous complete file or the new one,
/// never a torn write.
void write_snapshot(const std::string& path,
                    const dmc::metrics::Registry& registry) {
  std::ostringstream body;
  registry.write_prometheus(body);
  std::string err;
  if (!dmc::obs::write_file_atomic(path, body.str(), &err))
    std::cerr << "dmcd: cannot publish metrics snapshot " << path << ": "
              << err << "\n";
}

struct Args {
  std::string socket;
  std::string universe_dir;
  std::string metrics_file;
  std::string flight_dir;
  long long metrics_period_ms = 1000;
  dmc::serve::SchedulerOptions sched;
};

Args parse_args(int argc, char** argv) {
  Args a;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage(std::string(flag) + " needs a value");
    return argv[++i];
  };
  auto int_value = [&](int& i, const char* flag) -> long long {
    const std::string v = value(i, flag);
    try {
      return std::stoll(v);
    } catch (...) {
      usage(std::string(flag) + ": not an integer: " + v);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      a.socket = value(i, "--socket");
    } else if (arg == "--workers") {
      a.sched.workers = static_cast<int>(int_value(i, "--workers"));
      if (a.sched.workers < 1) usage("--workers must be >= 1");
    } else if (arg == "--max-queue") {
      a.sched.max_queue = static_cast<int>(int_value(i, "--max-queue"));
      if (a.sched.max_queue < 1) usage("--max-queue must be >= 1");
    } else if (arg == "--universe-dir") {
      a.universe_dir = value(i, "--universe-dir");
    } else if (arg == "--metrics") {
      a.metrics_file = value(i, "--metrics");
    } else if (arg == "--metrics-period-ms") {
      a.metrics_period_ms = int_value(i, "--metrics-period-ms");
      if (a.metrics_period_ms < 10) usage("--metrics-period-ms too small");
    } else if (arg == "--flight-record") {
      a.flight_dir = value(i, "--flight-record");
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown argument: " + arg);
    }
  }
  if (a.socket.empty()) usage("--socket is required");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // The daemon always runs with metrics on: they feed the `metrics`
  // protocol verb and the optional snapshot file.
  dmc::metrics::Registry registry;
  dmc::metrics::set_global(&registry);

  dmc::serve::ServerOptions opts;
  opts.socket_path = args.socket;
  opts.sched = args.sched;
  opts.universe_dir = args.universe_dir;
  opts.flight_dir = args.flight_dir;
  dmc::serve::Server server(opts);
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Periodic snapshot publisher (S1). The condition_variable doubles as
  // the stop signal so shutdown never waits out a full period.
  std::mutex snap_mu;
  std::condition_variable snap_cv;
  bool snap_stop = false;
  dmc::par::Thread snapshotter;
  if (!args.metrics_file.empty()) {
    snapshotter = dmc::par::Thread([&] {
      std::unique_lock<std::mutex> lock(snap_mu);
      while (!snap_stop) {
        lock.unlock();
        write_snapshot(args.metrics_file, registry);
        lock.lock();
        snap_cv.wait_for(
            lock, std::chrono::milliseconds(args.metrics_period_ms),
            [&] { return snap_stop; });
      }
    });
  }

  std::cout << "dmcd listening on " << args.socket << std::endl;
  const int rc = server.run();

  {
    std::lock_guard<std::mutex> lock(snap_mu);
    snap_stop = true;
  }
  snap_cv.notify_all();
  if (snapshotter.joinable()) snapshotter.join();
  // Final snapshot so post-mortem scrapes see the drained totals.
  if (!args.metrics_file.empty()) write_snapshot(args.metrics_file, registry);

  // A signal-driven shutdown (vs the polite shutdown verb) is the
  // degraded ending a post-mortem wants context for: dump the daemon's
  // flight ring — one note per handled request plus the drain markers.
  if (g_signaled != 0 && !args.flight_dir.empty()) {
    const std::string path = args.flight_dir + "/dmcd-shutdown.jsonl";
    std::string err;
    if (!dmc::obs::write_file_atomic(path, server.flight_dump(), &err))
      std::cerr << "dmcd: cannot write flight record " << path << ": " << err
                << "\n";
    else
      std::cout << "dmcd flight record: " << path << std::endl;
  }

  g_server = nullptr;
  dmc::metrics::set_global(nullptr);
  std::cout << "dmcd stopped (rc=" << rc << ")" << std::endl;
  return rc;
}
