// dmcd-client — command-line client for a running dmcd.
//
// Used by tests, benches, and the CI serving smoke job; scripts talk to
// the daemon through this binary instead of open-coding socket I/O.
//
//   dmcd-client --socket PATH ping|metrics|shutdown
//   dmcd-client --socket PATH trace QUERY_ID
//   dmcd-client --socket PATH query '<json request line>'
//   dmcd-client --socket PATH batch    # JSON request lines on stdin
//
// Every received response is printed as one JSON line on stdout. The
// exit code is the protocol's CLI mapping: for `query`, the response's
// own `code`; for `batch`, the maximum code across responses — so a
// batch exits 0 iff every query held. Transport failures (no daemon,
// daemon died mid-batch) exit 4.
//
// --retries N bounds reconnect attempts when no daemon is listening yet
// (daemon warm-up in scripts/CI): exponential backoff from 50 ms doubling
// to a 1 s cap, plus a deterministic jitter derived from (socket path,
// attempt) — reproducible runs, but concurrent clients of different
// sockets don't stampede in lockstep. Default 0 = connect once, fail
// fast (the pre-retry behavior).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"

namespace {

[[noreturn]] void usage(const std::string& why = "") {
  if (!why.empty()) std::cerr << "dmcd-client: " << why << "\n";
  std::cerr << "usage: dmcd-client --socket PATH [--timeout-ms N] "
               "[--retries N] "
               "ping|metrics|shutdown|trace ID|query LINE|batch\n";
  std::exit(2);
}

long backoff_ms(const std::string& socket, int attempt) {
  const long base = attempt >= 5 ? 1000 : (50L << attempt);
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : socket) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(attempt);
  h *= 1099511628211ull;
  return base + static_cast<long>(h % (base / 4 + 1));
}

/// Connects, retrying a refused/absent socket up to `retries` times with
/// backoff_ms between attempts. Rethrows the final failure.
std::unique_ptr<dmc::serve::Client> connect_client(const std::string& socket,
                                                   int retries) {
  for (int attempt = 0;; ++attempt) {
    try {
      return std::make_unique<dmc::serve::Client>(socket);
    } catch (const std::exception& e) {
      if (attempt >= retries) throw;
      const long wait = backoff_ms(socket, attempt);
      std::cerr << "dmcd-client: connect failed (" << e.what() << "); retry "
                << (attempt + 1) << "/" << retries << " in " << wait
                << " ms\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
  }
}

int response_code(const dmc::serve::Json& resp) {
  const dmc::serve::Json& code = resp["code"];
  if (code.is_number()) return static_cast<int>(code.as_int());
  return dmc::serve::status_exit_code(resp["status"].as_string());
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket;
  std::string verb;
  std::string query_line;
  int timeout_ms = 60000;
  int retries = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) usage("--socket needs a value");
      socket = argv[++i];
    } else if (arg == "--timeout-ms") {
      if (i + 1 >= argc) usage("--timeout-ms needs a value");
      try {
        timeout_ms = std::stoi(argv[++i]);
      } catch (...) {
        usage("--timeout-ms: not an integer");
      }
    } else if (arg == "--retries") {
      if (i + 1 >= argc) usage("--retries needs a value");
      try {
        retries = std::stoi(argv[++i]);
      } catch (...) {
        usage("--retries: not an integer");
      }
      if (retries < 0) usage("--retries: must be >= 0");
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (verb.empty()) {
      verb = arg;
    } else if ((verb == "query" || verb == "trace") && query_line.empty()) {
      query_line = arg;
    } else {
      usage("unexpected argument: " + arg);
    }
  }
  if (socket.empty()) usage("--socket is required");
  if (verb.empty()) usage("missing verb");
  if (verb == "query" && query_line.empty()) usage("query needs a line");
  if (verb == "trace" && query_line.empty()) usage("trace needs a query id");

  try {
    const std::unique_ptr<dmc::serve::Client> conn =
        connect_client(socket, retries);
    dmc::serve::Client& client = *conn;

    if (verb == "ping" || verb == "metrics" || verb == "shutdown") {
      const auto resp = verb == "ping"       ? client.ping(timeout_ms)
                        : verb == "metrics" ? client.metrics(timeout_ms)
                                            : client.shutdown(timeout_ms);
      if (!resp) {
        std::cerr << "dmcd-client: no response\n";
        return 4;
      }
      std::cout << resp->dump() << "\n";
      return 0;
    }

    if (verb == "trace") {
      const auto resp = client.trace(query_line, timeout_ms);
      if (!resp) {
        std::cerr << "dmcd-client: no response\n";
        return 4;
      }
      std::cout << resp->dump() << "\n";
      return response_code(*resp);
    }

    if (verb == "query") {
      if (!client.send_line(query_line)) {
        std::cerr << "dmcd-client: send failed\n";
        return 4;
      }
      const auto resp = client.recv(timeout_ms);
      if (!resp) {
        std::cerr << "dmcd-client: no response\n";
        return 4;
      }
      std::cout << resp->dump() << "\n";
      return response_code(*resp);
    }

    if (verb == "batch") {
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(std::cin, line))
        if (!line.empty()) lines.push_back(line);
      for (const std::string& l : lines)
        if (!client.send_line(l)) {
          std::cerr << "dmcd-client: send failed\n";
          return 4;
        }
      int max_code = 0;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const auto resp = client.recv(timeout_ms);
        if (!resp) {
          std::cerr << "dmcd-client: missing " << (lines.size() - i)
                    << " responses\n";
          return 4;
        }
        std::cout << resp->dump() << "\n";
        if (response_code(*resp) > max_code) max_code = response_code(*resp);
      }
      return max_code;
    }

    usage("unknown verb: " + verb);
  } catch (const std::exception& e) {
    std::cerr << "dmcd-client: " << e.what() << "\n";
    return 4;
  }
}
