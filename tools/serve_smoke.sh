#!/usr/bin/env bash
# Serving smoke test (the CI `serve` job; also runnable locally):
#
#   tools/serve_smoke.sh [build-dir]
#
# Starts dmcd with a metrics snapshot file and a universe-cache dir,
# drives one mixed pipelined batch over the socket — a slow warm-up
# group, an over-deadline request, a warm-key run of 8 same-formula
# decides, and a malformed line — then asserts:
#
#   * the batch exit code is the max per-response code (deadline 6 beats
#     malformed 2 beats ok 0) — the CLI exit-code mapping end to end;
#   * the over-deadline request was answered `deadline` without running;
#   * the malformed line got `malformed` and did not kill the connection;
#   * the warm-key run performed exactly ONE universe construction per
#     engine key (single-flight tier, scraped from the metrics snapshot);
#   * `trace <id>` returns the retained span timeline of an answered
#     query, and does not count as a query response;
#   * `shutdown` drains cleanly: daemon exits 0 and unlinks its socket.
set -euo pipefail

BUILD=${1:-build}
DMCD="$PWD/$BUILD/tools/dmcd"
CLIENT="$PWD/$BUILD/tools/dmcd-client"
[ -x "$DMCD" ] && [ -x "$CLIENT" ] || {
  echo "serve_smoke: build dmcd and dmcd-client first ($BUILD/tools)" >&2
  exit 2
}

DIR=$(mktemp -d)
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

SOCK="$DIR/dmcd.sock"
SNAP="$DIR/metrics.prom"
"$DMCD" --socket "$SOCK" --workers 1 --max-queue 32 \
  --metrics "$SNAP" --metrics-period-ms 100 \
  --universe-dir "$DIR/ucache" >"$DIR/dmcd.log" 2>&1 &
DPID=$!

# Daemon warm-up via the client's own bounded reconnect (exponential
# backoff, deterministic jitter): 10 retries cover ~4 s of start-up.
"$CLIENT" --socket "$SOCK" --retries 10 ping | grep -q '"status":"pong"' || {
  echo "serve_smoke: daemon never became ready" >&2
  cat "$DIR/dmcd.log" >&2
  exit 1
}

# One pipelined connection, line order = admission order. With one worker
# the slow rank-3 group runs first, so the 1 ms deadline of "late" lapses
# in the queue; "late" shares the warm-key group's engine key and is
# answered `deadline` at dispatch without running.
TRI='!exists vertex x, y, z. adj(x,y) & adj(y,z) & adj(x,z)'
{
  printf '{"id":"slow","verb":"decide","formula":"%s","family":"path:10","dist":4}\n' "$TRI"
  printf '{"id":"late","verb":"decide","formula":"exists vertex x, y. adj(x, y)","family":"path:12","dist":4,"deadline_ms":1}\n'
  for i in $(seq 0 7); do
    printf '{"id":"w%s","verb":"decide","formula":"exists vertex x, y. adj(x, y)","family":"path:%s","dist":4}\n' "$i" $((6 + i % 4))
  done
  printf 'this is not json\n'
} >"$DIR/batch.jsonl"

set +e
"$CLIENT" --socket "$SOCK" batch <"$DIR/batch.jsonl" >"$DIR/out.jsonl"
RC=$?
set -e
cat "$DIR/out.jsonl"

python3 - "$DIR/out.jsonl" "$RC" <<'EOF'
import json, sys
rows = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    rows[r.get("id", "")] = r
rc = int(sys.argv[2])
assert len(rows) == 11, f"expected 11 responses, got {len(rows)}"
assert rows["slow"]["status"] == "ok" and rows["slow"]["code"] == 0, rows["slow"]
late = rows["late"]
assert late["status"] == "deadline" and late["code"] == 6, late
assert late["rounds"] == 0, f"over-deadline request ran anyway: {late}"
for i in range(8):
    w = rows[f"w{i}"]
    assert w["status"] == "ok" and w["code"] == 0, w
bad = rows[""]
assert bad["status"] == "malformed" and bad["code"] == 2, bad
# Batch exit code = max per-response code: deadline (6) dominates.
assert rc == 6, f"batch exit {rc}, want 6 (max of codes)"
print("serve_smoke: batch responses and exit-code mapping OK")
EOF

# Span timeline over the protocol: the daemon retains each answered
# query's wall-clock span tree (docs/SERVING.md §4); `trace w0` must
# return it with the full query/queue/exec breakdown. This runs before
# the metrics scrape so the serve.responses==10 assertion below doubles
# as proof that trace requests are not counted as query responses.
"$CLIENT" --socket "$SOCK" trace w0 >"$DIR/trace.json"
python3 - "$DIR/trace.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
assert t["status"] == "ok", t
body = t["trace"]
assert body["id"] == "w0", body
names = {s["name"] for s in body["spans"]}
assert {"query", "queue", "exec"} <= names, names
print("serve_smoke: trace verb OK (span timeline retained for w0)")
EOF

# Metrics over the protocol: the warm-key group (2 engine keys in the
# whole batch: the rank-3 slow formula and the shared decide formula)
# performed exactly one universe construction per key.
"$CLIENT" --socket "$SOCK" metrics >"$DIR/metrics.json"
python3 - "$DIR/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
tier = m["universe_tier"]
assert tier["builds"] == 2, f"single-flight violated: {tier}"
assert tier["keys"] == 2, tier
fields = m["metrics"]
assert fields["serve.responses"] == 10, fields["serve.responses"]
assert fields["serve.deadline.expired"] == 1
assert fields["serve.requests.malformed"] == 1
print("serve_smoke: metrics verb OK (builds=2 for 2 keys, 10 responses)")
EOF

"$CLIENT" --socket "$SOCK" shutdown | grep -q '"status":"shutting_down"'
DRC=0
wait "$DPID" || DRC=$?
DPID=""
[ "$DRC" -eq 0 ] || { echo "serve_smoke: daemon exit $DRC, want 0" >&2; exit 1; }
[ ! -e "$SOCK" ] || { echo "serve_smoke: socket not unlinked" >&2; exit 1; }

# The snapshot file survives the daemon (temp+rename, final flush on
# shutdown) and is valid Prometheus text.
grep -q '^dmc_serve_responses 10$' "$SNAP"
grep -q '^dmc_bpt_universe_tier_builds 2$' "$SNAP"
echo "serve_smoke: clean shutdown, snapshot flushed — all checks passed"
